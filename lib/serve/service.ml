open Sync_platform

type config = { queue_capacity : int; tracks : int; tick_ms : int }

let default_config = { queue_capacity = 64; tracks = 256; tick_ms = 2 }

(* Bounded buffer as a service: the classic two-semaphore split, strong
   (FCFS) so grants follow arrival order under overload. *)
type queue = {
  q_lock : Mutex.t;
  q_items : string Queue.t;
  q_slots : Semaphore.Counting.t;
  q_avail : Semaphore.Counting.t;
}

(* One disk head; the service time models the seek distance. *)
type sched = {
  s_head : Mutex.t;
  s_tracks : int;
  mutable s_pos : int;
}

(* Virtual ticks under a mutex; the ticker broadcasts every advance so
   sleepers (Condition.wait_for, deadline-bounded) re-check. *)
type timer = {
  t_lock : Mutex.t;
  t_cond : Condition.t;
  mutable t_ticks : int;
  mutable t_stop : bool;
  mutable t_thread : Thread.t option;
}

(* Readers-writers as a KV store: condition-based RW lock with timed
   acquisition on both sides. *)
type kv = {
  k_lock : Mutex.t;
  k_cond : Condition.t;
  mutable k_readers : int;
  mutable k_writer : bool;
  k_tbl : (string, string) Hashtbl.t;
}

type t = {
  cfg : config;
  queue : queue;
  sched : sched;
  timer : timer;
  kv : kv;
  stopped : bool Atomic.t;
}

let create ?(config = default_config) () =
  let timer =
    { t_lock = Mutex.create ~name:"serve.timer" ();
      t_cond = Condition.create ();
      t_ticks = 0;
      t_stop = false;
      t_thread = None }
  in
  let t =
    { cfg = config;
      queue =
        { q_lock = Mutex.create ~name:"serve.queue" ();
          q_items = Queue.create ();
          q_slots = Semaphore.Counting.create config.queue_capacity;
          q_avail = Semaphore.Counting.create 0 };
      sched =
        { s_head = Mutex.create ~name:"serve.head" ();
          s_tracks = config.tracks;
          s_pos = 0 };
      timer;
      kv =
        { k_lock = Mutex.create ~name:"serve.kv" ();
          k_cond = Condition.create ();
          k_readers = 0;
          k_writer = false;
          k_tbl = Hashtbl.create 64 };
      stopped = Atomic.make false }
  in
  let ticker () =
    let period = float_of_int config.tick_ms /. 1e3 in
    let rec loop () =
      Thread.delay period;
      let continue =
        Mutex.protect timer.t_lock (fun () ->
            if timer.t_stop then false
            else begin
              timer.t_ticks <- timer.t_ticks + 1;
              Condition.broadcast timer.t_cond;
              true
            end)
      in
      if continue then loop ()
    in
    loop ()
  in
  timer.t_thread <- Some (Thread.create ticker ());
  t

let queue_length t =
  Mutex.protect t.queue.q_lock (fun () -> Queue.length t.queue.q_items)

let remaining_ns ~deadline_end_ns = Int64.sub deadline_end_ns (Clock.now_ns ())

(* -- per-problem handlers ------------------------------------------ *)

let q_put t ~deadline_end_ns item =
  let rem = remaining_ns ~deadline_end_ns in
  if not (Semaphore.Counting.acquire_for t.queue.q_slots ~timeout_ns:rem) then
    Wire.Deadline_exceeded
  else begin
    Mutex.protect t.queue.q_lock (fun () ->
        Queue.push item t.queue.q_items);
    Semaphore.Counting.v t.queue.q_avail;
    Wire.Ok ""
  end

let q_get t ~deadline_end_ns =
  let rem = remaining_ns ~deadline_end_ns in
  if not (Semaphore.Counting.acquire_for t.queue.q_avail ~timeout_ns:rem) then
    Wire.Deadline_exceeded
  else begin
    let item =
      Mutex.protect t.queue.q_lock (fun () -> Queue.pop t.queue.q_items)
    in
    Semaphore.Counting.v t.queue.q_slots;
    Wire.Ok item
  end

let s_seek t ~deadline_end_ns track =
  if track < 0 || track >= t.sched.s_tracks then
    Wire.Bad_request
      (Printf.sprintf "seek: track %d outside [0, %d)" track t.sched.s_tracks)
  else
    let rem = remaining_ns ~deadline_end_ns in
    if not (Mutex.try_lock_for t.sched.s_head ~timeout_ns:rem) then
      Wire.Deadline_exceeded
    else begin
      let dist = abs (track - t.sched.s_pos) in
      (* Seek time: a bounded spin proportional to the distance — enough
         to make head possession a real contended resource. *)
      let sink = ref 0 in
      for i = 1 to dist * 20 do
        sink := !sink + i
      done;
      ignore !sink;
      t.sched.s_pos <- track;
      Mutex.unlock t.sched.s_head;
      Wire.Ok (string_of_int dist)
    end

let t_sleep t ~deadline_end_ns ticks =
  if ticks < 0 then Wire.Bad_request "sleep: negative ticks"
  else if ticks = 0 then Wire.Ok "0"
  else begin
    let tm = t.timer in
    let rem = remaining_ns ~deadline_end_ns in
    let deadline = Deadline.after_ns rem in
    Mutex.protect tm.t_lock (fun () ->
        let target = tm.t_ticks + ticks in
        let rec wait () =
          if tm.t_stop then Wire.Shutting_down
          else if tm.t_ticks >= target then Wire.Ok (string_of_int tm.t_ticks)
          else if Condition.wait_for tm.t_cond tm.t_lock ~deadline then wait ()
          else if tm.t_ticks >= target then Wire.Ok (string_of_int tm.t_ticks)
          else Wire.Deadline_exceeded
        in
        wait ())
  end

(* RW lock, readers share / writer excludes, both sides timed. Releases
   broadcast: waiting writers and readers all re-check. *)
let kv_read_acquire k ~deadline =
  Mutex.protect k.k_lock (fun () ->
      let rec go () =
        if not k.k_writer then begin
          k.k_readers <- k.k_readers + 1;
          true
        end
        else if Condition.wait_for k.k_cond k.k_lock ~deadline then go ()
        else not k.k_writer && (k.k_readers <- k.k_readers + 1; true)
      in
      go ())

let kv_read_release k =
  Mutex.protect k.k_lock (fun () ->
      k.k_readers <- k.k_readers - 1;
      if k.k_readers = 0 then Condition.broadcast k.k_cond)

let kv_write_acquire k ~deadline =
  Mutex.protect k.k_lock (fun () ->
      let rec go () =
        if (not k.k_writer) && k.k_readers = 0 then begin
          k.k_writer <- true;
          true
        end
        else if Condition.wait_for k.k_cond k.k_lock ~deadline then go ()
        else
          (not k.k_writer) && k.k_readers = 0 && (k.k_writer <- true; true)
      in
      go ())

let kv_write_release k =
  Mutex.protect k.k_lock (fun () ->
      k.k_writer <- false;
      Condition.broadcast k.k_cond)

let k_get t ~deadline_end_ns key =
  let deadline = Deadline.after_ns (remaining_ns ~deadline_end_ns) in
  if not (kv_read_acquire t.kv ~deadline) then Wire.Deadline_exceeded
  else begin
    let v = Hashtbl.find_opt t.kv.k_tbl key in
    kv_read_release t.kv;
    Wire.Ok (Option.value v ~default:"")
  end

let k_put t ~deadline_end_ns key value =
  let deadline = Deadline.after_ns (remaining_ns ~deadline_end_ns) in
  if not (kv_write_acquire t.kv ~deadline) then Wire.Deadline_exceeded
  else begin
    Hashtbl.replace t.kv.k_tbl key value;
    kv_write_release t.kv;
    Wire.Ok ""
  end

let handle t ~deadline_end_ns (req : Wire.req) =
  if Atomic.get t.stopped then Wire.Shutting_down
  else if req <> Wire.Ping && Int64.compare (remaining_ns ~deadline_end_ns) 0L <= 0
  then
    (* Fast reject: the budget is gone before any synchronizer is
       touched (the timeout-0 contract the platform edge tests pin). *)
    Wire.Deadline_exceeded
  else
    match req with
    | Wire.Ping -> Wire.Ok "pong"
    | Wire.Q_put item -> q_put t ~deadline_end_ns item
    | Wire.Q_get -> q_get t ~deadline_end_ns
    | Wire.S_seek track -> s_seek t ~deadline_end_ns track
    | Wire.T_sleep ticks -> t_sleep t ~deadline_end_ns ticks
    | Wire.K_get key -> k_get t ~deadline_end_ns key
    | Wire.K_put (key, value) -> k_put t ~deadline_end_ns key value

let stop t =
  if not (Atomic.exchange t.stopped true) then begin
    Mutex.protect t.timer.t_lock (fun () ->
        t.timer.t_stop <- true;
        Condition.broadcast t.timer.t_cond);
    match t.timer.t_thread with
    | Some th -> Thread.join th
    | None -> ()
  end
