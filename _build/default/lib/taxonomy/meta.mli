(** Per-solution evaluation metadata.

    Every concrete solution in [sync_problems] carries a [Meta.t]
    describing {e how} it was built, mirroring what Bloom extracted by
    hand from each example in TR-211:

    - which code fragment implements each constraint of the problem spec
      (as a canonical token list, so the independence analysis can diff
      the implementations of a shared constraint across two solutions);
    - how each information category the problem needs was accessed —
      [Direct] through a construct of the mechanism, [Indirect] through
      user-maintained auxiliary state or extra "synchronization
      procedures", or [Unsupported];
    - whether the resource implementation and the synchronizer are
      [Separated] (the Section-2 structure, by discipline), [Enforced]
      (the mechanism imposes the structure), or [Blended];
    - the auxiliary synchronization state and extra gate procedures the
      implementor was forced to introduce. *)

type support = Direct | Indirect | Unsupported

type separation = Separated | Blended | Enforced

type t = {
  mechanism : string;
  problem : string;
  variant : string;
  fragments : (string * string list) list;
      (** constraint id -> canonical tokens implementing it *)
  info_access : (Info.kind * support) list;
  aux_state : string list;
  sync_procedures : string list;
  separation : separation;
}

val make :
  mechanism:string -> problem:string -> ?variant:string ->
  fragments:(string * string list) list ->
  info_access:(Info.kind * support) list -> ?aux_state:string list ->
  ?sync_procedures:string list -> separation:separation -> unit -> t

val support_to_string : support -> string

val support_symbol : support -> string
(** "D" / "I" / "-" for matrix cells. *)

val separation_to_string : separation -> string

val id : t -> string
(** "problem/variant@mechanism", unique across the registry. *)

val pp : Format.formatter -> t -> unit
