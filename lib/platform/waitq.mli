(** Wait queue with selective wakeup.

    The mechanisms in this library (monitor condition queues, serializer
    event queues, the path-expression arbiter) all need to park the calling
    thread and later wake {e a specific} waiter — the longest waiting, or
    the one with the smallest priority key — rather than "some" waiter.
    POSIX condition variables cannot target one waiter reliably, so each
    parked thread gets a private condition variable and a [released] flag;
    spurious wakeups are absorbed by re-checking the flag.

    All operations must be called with the caller already holding [lock]
    (the external mutex protecting the owning mechanism's state); [wait]
    releases it while parked and reacquires it before returning, exactly
    like [Condition.wait]. *)

type 'a t
(** A queue of parked waiters, each tagged with a value of type ['a]
    (priority key, request descriptor, ...). *)

type 'a waiter
(** A handle for one parked thread. *)

val create : ?name:string -> unit -> 'a t
(** [name] (default ["waitq"]) is the trace site label. When tracing is
    on, parking emits a wait span (arg = queue depth at enqueue) plus a
    spurious instant per absorbed wakeup; releasing a waiter emits a
    handoff instant (arg = waiters left); {!wake_all} emits one signal
    instant (arg = waiters woken); an expired {!wait_for} emits an
    abandon instant (arg = ns spent parked). *)

val length : 'a t -> int
(** Number of currently parked (not yet released) waiters. *)

val is_empty : 'a t -> bool

val wait : ?on_abort:(unit -> unit) -> 'a t -> lock:Mutex.t -> 'a -> unit
(** [wait q ~lock tag] enqueues the caller (FIFO position = arrival order),
    releases [lock], parks until released by one of the wake functions, then
    reacquires [lock].

    Fault sites (see {!Fault}): ["waitq.pre-wait"] fires before the caller
    is enqueued, so an injected abort leaves the queue untouched;
    ["waitq.post-wakeup"] fires after a wake has been consumed. In the
    latter case the grant this wake carried (a semaphore unit, monitor
    ownership, ...) would be lost, so the owning mechanism supplies
    [on_abort], called with [lock] held just before the abort propagates,
    to re-route it (e.g. wake the next waiter or return the unit to the
    counter). *)

val wait_for :
  ?on_abort:(unit -> unit) ->
  'a t ->
  lock:Mutex.t ->
  deadline:Deadline.t ->
  'a ->
  bool
(** Timed {!wait}: parks until released or [deadline] expires. Returns
    [true] if a wake was consumed (same post-wakeup fault semantics as
    {!wait}); on expiry removes the caller from the queue — so a later
    waker never targets it — and returns [false] with [lock] held.
    Deterministic under {!Detrt} (the deadline is a poll budget). *)

val tags : 'a t -> 'a list
(** Tags of parked waiters in arrival order (oldest first). *)

val wake_first : 'a t -> bool
(** Release the longest-waiting parked waiter. Returns [false] if the queue
    is empty. *)

val wake_first_matching : 'a t -> f:('a -> bool) -> bool
(** Release the longest-waiting waiter whose tag satisfies [f]. *)

val wake_min : 'a t -> cmp:('a -> 'a -> int) -> bool
(** Release the waiter with the minimal tag under [cmp]; ties broken by
    arrival order (FIFO). *)

val wake_n : 'a t -> int -> int
(** [wake_n q n] releases up to [n] of the oldest parked waiters (FIFO)
    in one pass: one queue split and one batched signal instant instead
    of [n] handoff instants and [n] rescans. Returns how many were
    released. This is the batching substrate for semaphore [V]-storms
    (see {!Semaphore.Counting.v_n}). *)

val wake_all : 'a t -> int
(** Release every parked waiter; returns how many were released. *)

val min_tag : 'a t -> cmp:('a -> 'a -> int) -> 'a option
(** Minimal tag among parked waiters, without waking anyone. *)
