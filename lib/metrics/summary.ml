type op_stats = {
  op : string;
  count : int;
  failures : int;
  mean_ns : float;
  min_ns : int;
  p50_ns : int;
  p90_ns : int;
  p95_ns : int;
  p99_ns : int;
  p999_ns : int;
  max_ns : int;
}

type t = {
  elapsed_ns : int64;
  total_ops : int;
  total_failures : int;
  throughput_per_s : float;
  per_op : op_stats list;
}

let of_recorder ~elapsed_ns r =
  let ops = Recorder.op_names r in
  let per_op =
    List.init (Array.length ops) (fun i ->
        let h = Recorder.hist r ~op:i in
        let q = Histogram.quantile h in
        { op = ops.(i);
          count = Histogram.count h;
          failures = Recorder.op_failures r ~op:i;
          mean_ns = Histogram.mean h;
          min_ns = Histogram.min_value h;
          p50_ns = q 0.50;
          p90_ns = q 0.90;
          p95_ns = q 0.95;
          p99_ns = q 0.99;
          p999_ns = q 0.999;
          max_ns = Histogram.max_value h })
  in
  let total_ops = Recorder.ops_recorded r in
  let seconds = Int64.to_float elapsed_ns /. 1e9 in
  { elapsed_ns;
    total_ops;
    total_failures = Recorder.failures r;
    throughput_per_s =
      (if seconds > 0.0 then float_of_int total_ops /. seconds else 0.0);
    per_op }

let overall_quantile t f =
  List.fold_left (fun acc s -> max acc (f s)) 0 t.per_op

let pp ppf t =
  Format.fprintf ppf "%-8s %10s %12s %10s %10s %10s %10s %10s@." "op" "count"
    "mean ns" "p50" "p95" "p99" "p99.9" "max";
  List.iter
    (fun s ->
      Format.fprintf ppf "%-8s %10d %12.0f %10d %10d %10d %10d %10d" s.op
        s.count s.mean_ns s.p50_ns s.p95_ns s.p99_ns s.p999_ns s.max_ns;
      if s.failures > 0 then Format.fprintf ppf "  (%d failed)" s.failures;
      Format.fprintf ppf "@.")
    t.per_op;
  Format.fprintf ppf "total %d ops in %.3f s -> %.0f ops/s@." t.total_ops
    (Int64.to_float t.elapsed_ns /. 1e9)
    t.throughput_per_s

let op_to_json s =
  Emit.Obj
    [ ("op", Emit.Str s.op);
      ("count", Emit.Int s.count);
      ("failures", Emit.Int s.failures);
      ("mean_ns", Emit.Float s.mean_ns);
      ("min_ns", Emit.Int s.min_ns);
      ("p50_ns", Emit.Int s.p50_ns);
      ("p90_ns", Emit.Int s.p90_ns);
      ("p95_ns", Emit.Int s.p95_ns);
      ("p99_ns", Emit.Int s.p99_ns);
      ("p999_ns", Emit.Int s.p999_ns);
      ("max_ns", Emit.Int s.max_ns) ]

let to_json t =
  Emit.Obj
    [ ("elapsed_ns", Emit.Int (Int64.to_int t.elapsed_ns));
      ("total_ops", Emit.Int t.total_ops);
      ("total_failures", Emit.Int t.total_failures);
      ("throughput_per_s", Emit.Float t.throughput_per_s);
      ("per_op", Emit.List (List.map op_to_json t.per_op)) ]

let csv_header =
  "op,count,failures,mean_ns,min_ns,p50_ns,p90_ns,p95_ns,p99_ns,p999_ns,max_ns"

let csv_rows ~label t =
  List.map
    (fun s ->
      Emit.csv_line
        (label
        @ [ s.op; string_of_int s.count; string_of_int s.failures;
            Printf.sprintf "%.0f" s.mean_ns; string_of_int s.min_ns;
            string_of_int s.p50_ns; string_of_int s.p90_ns;
            string_of_int s.p95_ns; string_of_int s.p99_ns;
            string_of_int s.p999_ns; string_of_int s.max_ns ]))
    t.per_op
