open Sync_monitor

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let check_strings = Alcotest.(check (list string))

(* ------------------------------------------------------------------ *)
(* Mutual exclusion                                                   *)

let test_mutual_exclusion () =
  let m = Monitor.create () in
  let g = Testutil.Gauge.create () in
  let worker () =
    for _ = 1 to 200 do
      Monitor.with_monitor m (fun () ->
          Testutil.Gauge.enter g;
          Thread.yield ();
          Testutil.Gauge.leave g)
    done
  in
  Testutil.run_all (List.init 4 (fun _ -> worker));
  check_int "one inside" 1 (Testutil.Gauge.max g)

let test_exception_releases () =
  let m = Monitor.create () in
  (try Monitor.with_monitor m (fun () -> failwith "boom")
   with Failure _ -> ());
  (* If the exception leaked the monitor, this would deadlock. *)
  Monitor.with_monitor m (fun () -> ())

(* ------------------------------------------------------------------ *)
(* Hoare signalling: the signalled process runs immediately; the       *)
(* signaller resumes afterwards, before processes waiting at entry.    *)

let test_hoare_signal_order () =
  let m = Monitor.create ~discipline:`Hoare () in
  let c = Monitor.Cond.create m in
  let j = Testutil.Journal.create () in
  let waiter_in = Atomic.make false in
  let waiter =
    Testutil.spawn (fun () ->
        Monitor.with_monitor m (fun () ->
            Atomic.set waiter_in true;
            Monitor.Cond.wait c;
            Testutil.Journal.add j "waiter-resumed"))
  in
  Testutil.eventually "waiter waiting" (fun () ->
      Atomic.get waiter_in && Monitor.Cond.count c = 1);
  Monitor.with_monitor m (fun () ->
      Testutil.Journal.add j "before-signal";
      Monitor.Cond.signal c;
      Testutil.Journal.add j "after-signal");
  Sync_platform.Process.join waiter;
  check_strings "hoare order"
    [ "before-signal"; "waiter-resumed"; "after-signal" ]
    (Testutil.Journal.entries j)

let test_mesa_signal_order () =
  let m = Monitor.create ~discipline:`Mesa () in
  let c = Monitor.Cond.create m in
  let j = Testutil.Journal.create () in
  let waiter =
    Testutil.spawn (fun () ->
        Monitor.with_monitor m (fun () ->
            Monitor.Cond.wait c;
            Testutil.Journal.add j "waiter-resumed"))
  in
  Testutil.eventually "waiter waiting" (fun () -> Monitor.Cond.count c = 1);
  Monitor.with_monitor m (fun () ->
      Testutil.Journal.add j "before-signal";
      Monitor.Cond.signal c;
      Testutil.Journal.add j "after-signal");
  Sync_platform.Process.join waiter;
  check_strings "mesa order"
    [ "before-signal"; "after-signal"; "waiter-resumed" ]
    (Testutil.Journal.entries j)

(* Under Hoare semantics a signalled waiter may rely on the condition      *)
(* established by the signaller without re-checking: nobody can slip in    *)
(* between the signal and the waiter resuming.                             *)
let test_hoare_no_barging () =
  let m = Monitor.create ~discipline:`Hoare () in
  let c = Monitor.Cond.create m in
  let token = ref false in
  let stolen = ref false in
  let ok = Atomic.make false in
  let waiter =
    Testutil.spawn (fun () ->
        Monitor.with_monitor m (fun () ->
            Monitor.Cond.wait c;
            (* Token must still be there: no barging. *)
            Atomic.set ok !token))
  in
  Testutil.eventually "waiting" (fun () -> Monitor.Cond.count c = 1);
  (* A thief keeps trying to enter and consume the token. *)
  let stop = Atomic.make false in
  let thief =
    Testutil.spawn (fun () ->
        while not (Atomic.get stop) do
          Monitor.with_monitor m (fun () ->
              if !token then begin
                token := false;
                stolen := true
              end);
          Thread.yield ()
        done)
  in
  Monitor.with_monitor m (fun () ->
      token := true;
      Monitor.Cond.signal c);
  Sync_platform.Process.join waiter;
  Atomic.set stop true;
  Sync_platform.Process.join thief;
  check_bool "condition survived to waiter" true (Atomic.get ok)

(* ------------------------------------------------------------------ *)
(* Priority waits                                                     *)

let test_wait_pri_order () =
  let m = Monitor.create () in
  let c = Monitor.Cond.create m in
  let j = Testutil.Journal.create () in
  let waiter rank =
    let t =
      Testutil.spawn (fun () ->
          Monitor.with_monitor m (fun () ->
              Monitor.Cond.wait_pri c rank;
              Testutil.Journal.add j (string_of_int rank)))
    in
    t
  in
  let t1 = waiter 30 in
  Testutil.eventually "1 parked" (fun () -> Monitor.Cond.count c = 1);
  let t2 = waiter 10 in
  Testutil.eventually "2 parked" (fun () -> Monitor.Cond.count c = 2);
  let t3 = waiter 20 in
  Testutil.eventually "3 parked" (fun () -> Monitor.Cond.count c = 3);
  Alcotest.(check (option int))
    "min_rank" (Some 10)
    (Monitor.Cond.min_rank c);
  for _ = 1 to 3 do
    Monitor.with_monitor m (fun () -> Monitor.Cond.signal c)
  done;
  List.iter Sync_platform.Process.join [ t1; t2; t3 ];
  check_strings "rank order" [ "10"; "20"; "30" ] (Testutil.Journal.entries j)

let test_wait_fifo_on_equal_rank () =
  let m = Monitor.create () in
  let c = Monitor.Cond.create m in
  let j = Testutil.Journal.create () in
  let ts =
    List.init 3 (fun i ->
        let t =
          Testutil.spawn (fun () ->
              Monitor.with_monitor m (fun () ->
                  Monitor.Cond.wait c;
                  Testutil.Journal.add j (string_of_int i)))
        in
        Testutil.eventually "parked" (fun () -> Monitor.Cond.count c = i + 1);
        t)
  in
  for _ = 1 to 3 do
    Monitor.with_monitor m (fun () -> Monitor.Cond.signal c)
  done;
  List.iter Sync_platform.Process.join ts;
  check_strings "fifo" [ "0"; "1"; "2" ] (Testutil.Journal.entries j)

let test_queue_empty_signal_noop () =
  let m = Monitor.create () in
  let c = Monitor.Cond.create m in
  Monitor.with_monitor m (fun () ->
      check_bool "queue empty" false (Monitor.Cond.queue c);
      Monitor.Cond.signal c;
      check_int "still empty" 0 (Monitor.Cond.count c))

let test_broadcast_mesa () =
  let m = Monitor.create ~discipline:`Mesa () in
  let c = Monitor.Cond.create m in
  let released = Atomic.make 0 in
  let ts =
    List.init 3 (fun i ->
        let t =
          Testutil.spawn (fun () ->
              Monitor.with_monitor m (fun () ->
                  Monitor.Cond.wait c;
                  ignore (Atomic.fetch_and_add released 1)))
        in
        Testutil.eventually "parked" (fun () -> Monitor.Cond.count c = i + 1);
        t)
  in
  Monitor.with_monitor m (fun () -> Monitor.Cond.broadcast c);
  List.iter Sync_platform.Process.join ts;
  check_int "all released" 3 (Atomic.get released)

let test_broadcast_hoare () =
  let m = Monitor.create ~discipline:`Hoare () in
  let c = Monitor.Cond.create m in
  let released = Atomic.make 0 in
  let ts =
    List.init 3 (fun i ->
        let t =
          Testutil.spawn (fun () ->
              Monitor.with_monitor m (fun () ->
                  Monitor.Cond.wait c;
                  ignore (Atomic.fetch_and_add released 1)))
        in
        Testutil.eventually "parked" (fun () -> Monitor.Cond.count c = i + 1);
        t)
  in
  Monitor.with_monitor m (fun () -> Monitor.Cond.broadcast c);
  List.iter Sync_platform.Process.join ts;
  check_int "all released" 3 (Atomic.get released)

(* ------------------------------------------------------------------ *)
(* Mesa requires re-checking; a predicate loop must converge.          *)

let test_mesa_recheck_loop () =
  let m = Monitor.create ~discipline:`Mesa () in
  let c = Monitor.Cond.create m in
  let tokens = ref 0 in
  let consumed = Atomic.make 0 in
  let consumer () =
    Monitor.with_monitor m (fun () ->
        while !tokens = 0 do
          Monitor.Cond.wait c
        done;
        decr tokens;
        ignore (Atomic.fetch_and_add consumed 1))
  in
  let ts = List.init 3 (fun _ -> Testutil.spawn consumer) in
  Testutil.eventually "parked" (fun () -> Monitor.Cond.count c = 3);
  (* One token, but wake everyone: only one consumer may take it. *)
  Monitor.with_monitor m (fun () ->
      tokens := 1;
      Monitor.Cond.broadcast c);
  Testutil.eventually "one consumed" (fun () -> Atomic.get consumed = 1);
  Testutil.never "extra consumption" (fun () -> Atomic.get consumed > 1);
  Monitor.with_monitor m (fun () ->
      tokens := 2;
      Monitor.Cond.broadcast c);
  List.iter Sync_platform.Process.join ts;
  check_int "all done" 3 (Atomic.get consumed);
  check_int "tokens drained" 0 !tokens

(* ------------------------------------------------------------------ *)
(* Protected-resource structure (E11)                                  *)

(* Naive structure: an operation of monitor A invokes, while inside A, an
   operation that waits inside monitor B. The signaller for B must come
   through A, which is held: deadlock. *)
let test_nested_monitor_deadlock () =
  let outer = Monitor.create () in
  let inner = Monitor.create () in
  let inner_cond = Monitor.Cond.create inner in
  let l = Sync_platform.Latch.create 2 in
  let consumer =
    Testutil.spawn (fun () ->
        Protected.access_inside outer (fun () ->
            Monitor.with_monitor inner (fun () ->
                Monitor.Cond.wait inner_cond));
        Sync_platform.Latch.arrive l)
  in
  Testutil.eventually "consumer stuck inside" (fun () ->
      Monitor.Cond.count inner_cond = 1);
  let producer =
    Testutil.spawn (fun () ->
        (* Must pass through the outer monitor to signal: blocked forever. *)
        Protected.access_inside outer (fun () ->
            Monitor.with_monitor inner (fun () ->
                Monitor.Cond.signal inner_cond));
        Sync_platform.Latch.arrive l)
  in
  let finished =
    Sync_platform.Latch.wait_timeout l ~timeout_ns:300_000_000L
  in
  check_bool "deadlocks" false finished;
  (* Both threads are permanently stuck; detach them (test process exits). *)
  ignore consumer;
  ignore producer

(* The paper's structure: the outer monitor is released before the inner
   operation runs, so the producer can get through. *)
let test_protected_structure_no_deadlock () =
  let outer = Monitor.create () in
  let inner = Monitor.create () in
  let inner_cond = Monitor.Cond.create inner in
  let waiting = Atomic.make false in
  let l = Sync_platform.Latch.create 2 in
  let consumer =
    Testutil.spawn (fun () ->
        Protected.access outer
          ~before:(fun () -> ())
          ~after:(fun () -> ())
          (fun () ->
            Monitor.with_monitor inner (fun () ->
                Atomic.set waiting true;
                Monitor.Cond.wait inner_cond));
        Sync_platform.Latch.arrive l)
  in
  Testutil.eventually "consumer waiting in inner" (fun () ->
      Atomic.get waiting && Monitor.Cond.count inner_cond = 1);
  let producer =
    Testutil.spawn (fun () ->
        Protected.access outer
          ~before:(fun () -> ())
          ~after:(fun () -> ())
          (fun () ->
            Monitor.with_monitor inner (fun () ->
                Monitor.Cond.signal inner_cond));
        Sync_platform.Latch.arrive l)
  in
  check_bool "completes" true
    (Sync_platform.Latch.wait_timeout l ~timeout_ns:5_000_000_000L);
  Sync_platform.Process.join consumer;
  Sync_platform.Process.join producer

let test_protected_after_runs_on_exception () =
  let m = Monitor.create () in
  let after_ran = ref false in
  (try
     Protected.access m
       ~before:(fun () -> ())
       ~after:(fun () -> after_ran := true)
       (fun () -> failwith "op failed")
   with Failure _ -> ());
  check_bool "after ran" true !after_ran

let () =
  Alcotest.run "monitor"
    [ ( "exclusion",
        [ Alcotest.test_case "mutual exclusion" `Quick test_mutual_exclusion;
          Alcotest.test_case "exception releases" `Quick
            test_exception_releases ] );
      ( "signalling",
        [ Alcotest.test_case "hoare order" `Quick test_hoare_signal_order;
          Alcotest.test_case "mesa order" `Quick test_mesa_signal_order;
          Alcotest.test_case "hoare no barging" `Quick test_hoare_no_barging;
          Alcotest.test_case "signal empty is noop" `Quick
            test_queue_empty_signal_noop;
          Alcotest.test_case "broadcast mesa" `Quick test_broadcast_mesa;
          Alcotest.test_case "broadcast hoare" `Quick test_broadcast_hoare;
          Alcotest.test_case "mesa recheck loop" `Quick test_mesa_recheck_loop
        ] );
      ( "priority",
        [ Alcotest.test_case "wait_pri order" `Quick test_wait_pri_order;
          Alcotest.test_case "fifo on equal rank" `Quick
            test_wait_fifo_on_equal_rank ] );
      ( "protected",
        [ Alcotest.test_case "nested call deadlocks" `Quick
            test_nested_monitor_deadlock;
          Alcotest.test_case "paper structure avoids deadlock" `Quick
            test_protected_structure_no_deadlock;
          Alcotest.test_case "after runs on exception" `Quick
            test_protected_after_runs_on_exception ] ) ]
