lib/platform/semaphore.mli:
