examples/alarmclock.mli:
