(** The E6 conformance matrix: run every registered solution's machine
    checks and tabulate outcomes, distinguishing the two {e expected}
    failures (Figure 1's footnote-3 anomaly, Courtois problem 1 under
    strict readers-priority) from genuine regressions. *)

type outcome =
  | Conformant
  | Nonconformant of string      (** unexpected failure: a real bug *)
  | Expected_anomaly of string   (** paper-documented failure reproduced *)
  | Unexpected_pass              (** a documented anomaly failed to appear *)

type result = { entry : Registry.entry; outcome : outcome }

val run : Registry.entry list -> result list

val regressions : result list -> result list
(** [Nonconformant] and [Unexpected_pass] rows — must be empty on a
    healthy artifact. *)

val pp : Format.formatter -> result list -> unit
