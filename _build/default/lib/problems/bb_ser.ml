(** Bounded buffer with a serializer. The crowds replace the monitor
    solution's in-flight flags (synchronization-state information kept by
    the mechanism), and there is no signalling code at all: the guards
    are re-evaluated automatically at release points. *)

open Sync_serializer
open Sync_taxonomy

type t = {
  ser : Serializer.t;
  putq : Serializer.Queue.t;
  getq : Serializer.Queue.t;
  putters : Serializer.Crowd.t;
  getters : Serializer.Crowd.t;
  capacity : int;
  mutable items : int; (* completed puts minus completed gets *)
  res_put : pid:int -> int -> unit;
  res_get : pid:int -> int;
}

let mechanism = "serializer"

let create ~capacity ~put ~get =
  let ser = Serializer.create () in
  { ser;
    putq = Serializer.Queue.create ~name:"putq" ser;
    getq = Serializer.Queue.create ~name:"getq" ser;
    putters = Serializer.Crowd.create ~name:"putters" ser;
    getters = Serializer.Crowd.create ~name:"getters" ser;
    capacity; items = 0; res_put = put; res_get = get }

let put t ~pid v =
  Serializer.with_serializer t.ser (fun () ->
      Serializer.enqueue t.putq ~until:(fun () ->
          Serializer.Crowd.is_empty t.putters && t.items < t.capacity);
      Serializer.join_crowd t.putters ~body:(fun () -> t.res_put ~pid v);
      t.items <- t.items + 1)

let get t ~pid =
  Serializer.with_serializer t.ser (fun () ->
      Serializer.enqueue t.getq ~until:(fun () ->
          Serializer.Crowd.is_empty t.getters && t.items > 0);
      let v = Serializer.join_crowd t.getters ~body:(fun () -> t.res_get ~pid) in
      t.items <- t.items - 1;
      v)

let stop _ = ()

let meta =
  Meta.make ~mechanism ~problem:"bounded-buffer"
    ~fragments:
      [ ("bb-no-overfill", [ "enqueue(putq)"; "until"; "items<capacity" ]);
        ("bb-no-underflow", [ "enqueue(getq)"; "until"; "items>0" ]);
        ("bb-access-exclusion",
         [ "empty(putters)"; "empty(getters)"; "join_crowd" ]) ]
    ~info_access:
      [ (Info.Local_state, Meta.Direct); (Info.Sync_state, Meta.Direct) ]
    ~aux_state:[ "items count mirrors buffer occupancy" ]
    ~separation:Meta.Enforced ()
