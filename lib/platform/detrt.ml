(* Deterministic cooperative runtime: virtual tasks (OCaml 5 effect
   fibers) multiplexed on the calling thread. Every scheduling decision —
   which runnable task proceeds, which waiter receives a released mutex —
   is delegated to a single [choose] callback, so a run is a pure function
   of the scenario and the choice sequence: record the choices and any
   interleaving replays byte-for-byte.

   Context-switch points are the blocking primitives themselves
   (mutex lock/unlock, condition wait/signal/broadcast, spawn, join,
   quiescence). Code between two primitive operations executes atomically,
   which is sound for the mechanism implementations because they keep all
   shared state under their low-level locks. *)

exception Deadlock of string

exception Step_limit of int

type state = Unstarted | Runnable | Running | Blocked | Quiescing | Done

type task = {
  tid : int;
  tname : string;
  mutable state : state;
  (* The resumption: for Unstarted tasks, starting the body; otherwise
     continuing a captured fiber. Uniformly a thunk so that effects with
     differently-typed continuations share one queue. *)
  mutable resume : (unit -> unit) option;
  mutable t_exn : exn option;
  mutable joiners : task list;
}

type sched = {
  choose : int array -> int;
  max_steps : int;
  mutable runq : task list; (* deterministic FIFO of runnable tasks *)
  mutable quiescers : task list;
  mutable all : task list; (* spawn order, newest first *)
  mutable next_tid : int;
  mutable steps : int;
  mutable first_exn : exn option;
  mutable limit_hit : bool;
}

let cur_sched : sched option ref = ref None

let cur_task : task option ref = ref None

let active () = Option.is_some !cur_sched

let in_fiber () = Option.is_some !cur_task

let self () =
  match !cur_task with
  | Some t -> t
  | None -> failwith "Detrt: primitive used outside a running task"

let the_sched () =
  match !cur_sched with
  | Some s -> s
  | None -> failwith "Detrt: no deterministic run in progress"

type _ Effect.t +=
  | Yield : unit Effect.t
  | Block : unit Effect.t
  | Quiesce : unit Effect.t

let make_runnable s t =
  t.state <- Runnable;
  s.runq <- s.runq @ [ t ]

(* Pick the next runnable task and transfer control to it. Returns only
   when no progress is possible anymore (all done, deadlock, or the step
   limit tripped); the caller's stack then unwinds through the suspended
   handler frames. *)
let next s =
  if s.runq = [] && s.quiescers <> [] then begin
    let qs = s.quiescers in
    s.quiescers <- [];
    List.iter (make_runnable s) qs
  end;
  match s.runq with
  | [] -> () (* run loop over: [run] inspects task states afterwards *)
  | q ->
    s.steps <- s.steps + 1;
    if s.steps > s.max_steps then s.limit_hit <- true
    else begin
      let n = List.length q in
      let idx =
        if n = 1 then 0
        else begin
          let tids = Array.of_list (List.map (fun t -> t.tid) q) in
          let i = s.choose tids in
          if i < 0 || i >= n then
            invalid_arg
              (Printf.sprintf "Detrt: strategy chose %d of %d alternatives" i
                 n)
          else i
        end
      in
      let t = List.nth q idx in
      s.runq <- List.filteri (fun i _ -> i <> idx) q;
      let k =
        match t.resume with
        | Some k ->
          t.resume <- None;
          k
        | None -> failwith "Detrt: runnable task has no continuation"
      in
      t.state <- Running;
      cur_task := Some t;
      k ()
    end

let choose_index s alts =
  let n = Array.length alts in
  if n = 1 then 0
  else begin
    let i = s.choose alts in
    if i < 0 || i >= n then
      invalid_arg
        (Printf.sprintf "Detrt: strategy chose %d of %d alternatives" i n)
    else i
  end

(* Install the scheduler's effect handler around a task body and start
   it. Called from within [next], i.e. on the current handler chain. *)
let exec s t body =
  let open Effect.Deep in
  let finish exn_opt =
    t.state <- Done;
    t.t_exn <- exn_opt;
    (match (exn_opt, s.first_exn) with
    | Some e, None -> s.first_exn <- Some e
    | _ -> ());
    List.iter (make_runnable s) (List.rev t.joiners);
    t.joiners <- [];
    cur_task := None;
    next s
  in
  match_with body ()
    { retc = (fun () -> finish None);
      exnc = (fun e -> finish (Some e));
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield ->
            Some
              (fun (k : (a, _) continuation) ->
                t.resume <- Some (fun () -> continue k ());
                make_runnable s t;
                cur_task := None;
                next s)
          | Block ->
            Some
              (fun (k : (a, _) continuation) ->
                t.resume <- Some (fun () -> continue k ());
                t.state <- Blocked;
                cur_task := None;
                next s)
          | Quiesce ->
            Some
              (fun (k : (a, _) continuation) ->
                t.resume <- Some (fun () -> continue k ());
                t.state <- Quiescing;
                s.quiescers <- s.quiescers @ [ t ];
                cur_task := None;
                next s)
          | _ -> None) }

let spawn ?name body =
  let s = the_sched () in
  if not (in_fiber ()) then
    failwith "Detrt.spawn: must be called from inside the deterministic run";
  let tid = s.next_tid in
  s.next_tid <- tid + 1;
  let tname =
    match name with Some n -> n | None -> Printf.sprintf "task-%d" tid
  in
  let t =
    { tid; tname; state = Unstarted; resume = None; t_exn = None;
      joiners = [] }
  in
  t.resume <- Some (fun () -> exec s t body);
  s.all <- t :: s.all;
  make_runnable s t;
  (* spawning is itself a scheduling point *)
  Effect.perform Yield;
  t

let join t =
  match !cur_task with
  | None ->
    if t.state <> Done then
      failwith "Detrt.join: task still live after the deterministic run"
  | Some me ->
    if t.state <> Done then begin
      t.joiners <- me :: t.joiners;
      Effect.perform Block
    end

let yield () = if in_fiber () then Effect.perform Yield

(* A backend-agnostic "give someone else a chance": the det yield inside
   a run, the preemptive one outside. Used by the timed-wait polling
   loops, which exist in both worlds. *)
let relax () = if in_fiber () then Effect.perform Yield else Thread.yield ()

let self_info () =
  match !cur_task with Some t -> Some (t.tid, t.tname) | None -> None

let () =
  Deadlock.set_task_provider self_info;
  Fault.set_task_provider (fun () -> Option.map fst (self_info ()));
  Sync_trace.Probe.set_task_provider (fun () -> Option.map fst (self_info ()))

let await_quiescence () =
  if in_fiber () then Effect.perform Quiesce
  else failwith "Detrt.await_quiescence: outside a deterministic run"

let task_tid t = t.tid

let task_name t = t.tname

(* ------------------------------------------------------------------ *)
(* Deterministic mutexes and condition variables (the det halves of the
   platform's [Mutex]/[Condition] facades). Ownership is handed off
   directly on unlock; the receiving waiter is picked by [choose].      *)

type mutex = {
  mutable owner : task option;
  mutable mwaiters : task list;
  (* Watchdog resource id; -1 when the watchdog was off at creation
     (instrumentation is then skipped for this mutex). *)
  mid : int;
}

type cond = { mutable cwaiters : task list }

let mutex () =
  { owner = None; mwaiters = [];
    mid = (if Deadlock.enabled () then Deadlock.register ~kind:"mutex" ()
           else -1) }

let cond () = { cwaiters = [] }

let pick_waiter s waiters =
  match waiters with
  | [] -> assert false
  | [ w ] -> (w, [])
  | ws ->
    let arr = Array.of_list ws in
    let idx = choose_index s (Array.map (fun t -> t.tid) arr) in
    let w = arr.(idx) in
    (w, List.filteri (fun i _ -> i <> idx) ws)

let mutex_lock m =
  match !cur_task with
  | None ->
    (* Outside a run (e.g. post-run trace inspection): everything is
       quiesced, locking is a no-op as long as nobody holds the mutex. *)
    if m.owner <> None then
      failwith "Detrt: mutex held after the deterministic run"
  | Some _ ->
    Effect.perform Yield;
    (* still the same task: Yield re-enqueues and resumes us *)
    let t = self () in
    (match m.owner with
    | None ->
      m.owner <- Some t;
      if m.mid >= 0 then Deadlock.acquired m.mid
    | Some _ ->
      if m.mid >= 0 then Deadlock.blocked m.mid;
      m.mwaiters <- m.mwaiters @ [ t ];
      Effect.perform Block;
      (* ownership was transferred to us by the releasing task *)
      if m.mid >= 0 then Deadlock.acquired m.mid)

(* Non-blocking acquire. The preceding Yield makes the attempt itself a
   recorded scheduling point, so the outcome is a pure function of the
   schedule and replays deterministically. *)
let mutex_try_lock m =
  match !cur_task with
  | None -> failwith "Detrt: try_lock outside the deterministic run"
  | Some _ ->
    Effect.perform Yield;
    let t = self () in
    (match m.owner with
    | None ->
      m.owner <- Some t;
      if m.mid >= 0 then Deadlock.acquired m.mid;
      true
    | Some _ -> false)

(* Release [m], handing ownership to a chosen waiter if any. Shared by
   [mutex_unlock] and [cond_wait]. *)
let release_mutex s m =
  match m.mwaiters with
  | [] -> m.owner <- None
  | ws ->
    let w, rest = pick_waiter s ws in
    m.mwaiters <- rest;
    m.owner <- Some w;
    make_runnable s w

let holds m t = match m.owner with Some o -> o == t | None -> false

let mutex_unlock m =
  match !cur_task with
  | None -> ()
  | Some t ->
    if not (holds m t) then
      failwith "Detrt: mutex unlocked by a task that does not hold it";
    if m.mid >= 0 then Deadlock.released m.mid;
    release_mutex (the_sched ()) m;
    Effect.perform Yield

let cond_wait c m =
  match !cur_task with
  | None -> failwith "Detrt: Condition.wait outside the deterministic run"
  | Some t ->
    if not (holds m t) then
      failwith "Detrt: Condition.wait without holding the mutex";
    (* Atomic release-and-park: no scheduling point between enqueueing
       ourselves and releasing the mutex, so signals cannot be lost. *)
    c.cwaiters <- c.cwaiters @ [ t ];
    if m.mid >= 0 then Deadlock.released m.mid;
    release_mutex (the_sched ()) m;
    Effect.perform Block;
    (* Signalled: re-acquire like any newcomer (Mesa-style, matching the
       stdlib [Condition] contract the mechanisms are written against). *)
    mutex_lock m

let cond_signal c =
  match !cur_task with
  | None ->
    if c.cwaiters <> [] then
      failwith "Detrt: Condition.signal with waiters after the run"
  | Some _ ->
    let s = the_sched () in
    (match c.cwaiters with
    | [] -> ()
    | ws ->
      let w, rest = pick_waiter s ws in
      c.cwaiters <- rest;
      make_runnable s w);
    Effect.perform Yield

let cond_broadcast c =
  match !cur_task with
  | None ->
    if c.cwaiters <> [] then
      failwith "Detrt: Condition.broadcast with waiters after the run"
  | Some _ ->
    let s = the_sched () in
    let ws = c.cwaiters in
    c.cwaiters <- [];
    List.iter (make_runnable s) ws;
    Effect.perform Yield

(* ------------------------------------------------------------------ *)

let run ?(max_steps = 200_000) ~choose body =
  if active () then failwith "Detrt.run: deterministic runs do not nest";
  let s =
    { choose; max_steps; runq = []; quiescers = []; all = []; next_tid = 0;
      steps = 0; first_exn = None; limit_hit = false }
  in
  cur_sched := Some s;
  Fun.protect
    ~finally:(fun () ->
      cur_sched := None;
      cur_task := None)
    (fun () ->
      let main =
        { tid = 0; tname = "main"; state = Unstarted; resume = None;
          t_exn = None; joiners = [] }
      in
      s.next_tid <- 1;
      s.all <- [ main ];
      main.state <- Running;
      cur_task := Some main;
      exec s main body;
      (* The handler chain has fully unwound: classify the outcome. *)
      (match s.first_exn with Some e -> raise e | None -> ());
      if s.limit_hit then raise (Step_limit s.max_steps);
      let stuck = List.filter (fun t -> t.state <> Done) s.all in
      if stuck <> [] then begin
        (* When the watchdog is on, the blocked/holds edges of the stuck
           tasks are still registered: name the circular wait, if any. *)
        let cycle =
          match Deadlock.find_cycle () with
          | Some c -> "; wait-for cycle: " ^ Deadlock.cycle_to_string c
          | None -> ""
        in
        raise
          (Deadlock
             (Printf.sprintf "deadlock: %d task(s) blocked forever: %s%s"
                (List.length stuck)
                (String.concat ", "
                   (List.rev_map
                      (fun t -> Printf.sprintf "%s(#%d)" t.tname t.tid)
                      stuck))
                cycle))
      end;
      s.steps)
