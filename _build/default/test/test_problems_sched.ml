(* Disk-head scheduler and alarm clock across all five mechanisms. *)
open Sync_problems

let check_result name = function
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: %s" name msg

let disk_solutions : (string * (module Disk_intf.S)) list =
  [ ("semaphore", (module Disk_sem)); ("monitor", (module Disk_mon));
    ("serializer", (module Disk_ser)); ("pathexpr", (module Disk_path));
    ("csp", (module Disk_csp)); ("ccr", (module Disk_ccr)) ]

let alarm_solutions : (string * (module Alarm_intf.S)) list =
  [ ("semaphore", (module Alarm_sem)); ("monitor", (module Alarm_mon));
    ("serializer", (module Alarm_ser)); ("pathexpr", (module Alarm_path));
    ("csp", (module Alarm_csp)); ("ccr", (module Alarm_ccr));
    ("eventcount", (module Alarm_evc)) ]

let disk_scan (name, m) () = check_result name (Disk_harness.verify_scan m)

let disk_scan_below (name, m) () =
  (* A batch that is entirely below the head: one reversal, pure descent. *)
  check_result name
    (Disk_harness.verify_scan ~batch:[ 40; 10; 30; 5; 25 ] m)

let disk_scan_mixed_edges (name, m) () =
  check_result name (Disk_harness.verify_scan ~batch:[ 0; 99; 50; 51; 49 ] m)

let disk_stress (name, m) () = check_result name (Disk_harness.verify_stress m)

let disk_fcfs_baseline_serves_all () =
  check_result "fcfs-baseline" (Disk_harness.verify_stress (module Disk_fcfs))

(* SCAN must beat FCFS on arm travel for a common random workload. *)
let test_scan_beats_fcfs_travel () =
  (* A long-held disk (large work) guarantees a request backlog even on
     one core; with ~8 pending requests SCAN must clearly beat arrival
     order on arm travel. *)
  let travel m =
    fst
      (Disk_harness.run_stress m ~tracks:400 ~workers:8 ~requests_each:25
         ~hold_s:0.002 ~seed:5L ())
  in
  let scan = travel (module Disk_mon) in
  let fcfs = travel (module Disk_fcfs) in
  if scan * 10 >= fcfs * 8 then
    Alcotest.failf "SCAN travel %d not clearly better than FCFS travel %d"
      scan fcfs

let alarm_exact (name, m) () = check_result name (Alarm_harness.verify m)

let alarm_same_deadlines (name, m) () =
  check_result name
    (Alarm_harness.verify ~durations:[ 2; 2; 2; 1; 1; 3 ] m)

let alarm_zero (name, m) () = check_result name (Alarm_harness.verify_zero m)

let suite solutions mk =
  List.map
    (fun (name, m) -> Alcotest.test_case name `Quick (mk (name, m)))
    solutions

let () =
  Alcotest.run "problems-sched"
    [ ("disk-scan", suite disk_solutions disk_scan);
      ("disk-scan-below", suite disk_solutions disk_scan_below);
      ("disk-scan-edges", suite disk_solutions disk_scan_mixed_edges);
      ("disk-stress", suite disk_solutions disk_stress);
      ( "disk-baselines",
        [ Alcotest.test_case "fcfs baseline completes" `Quick
            disk_fcfs_baseline_serves_all;
          Alcotest.test_case "scan beats fcfs travel" `Quick
            test_scan_beats_fcfs_travel ] );
      ("alarm-exact", suite alarm_solutions alarm_exact);
      ("alarm-ties", suite alarm_solutions alarm_same_deadlines);
      ("alarm-zero", suite alarm_solutions alarm_zero) ]
