(** FCFS with a conditional critical region: CCR wakeup is an unordered
    broadcast-and-recheck, so request-time information has to be encoded
    as an explicit ticket pair in the shared variable — the textbook
    illustration that CCRs reach request order only indirectly. *)

open Sync_taxonomy

type shared = { mutable next : int; mutable serving : int }

type t = { v : shared Sync_ccr.Ccr.t; res_use : pid:int -> unit }

let mechanism = "ccr"

let create ~use =
  { v = Sync_ccr.Ccr.create { next = 0; serving = 0 }; res_use = use }

let use t ~pid =
  let ticket =
    Sync_ccr.Ccr.region t.v (fun s ->
        let n = s.next in
        s.next <- n + 1;
        n)
  in
  Sync_ccr.Ccr.await t.v (fun s -> s.serving = ticket);
  Fun.protect
    ~finally:(fun () ->
      Sync_ccr.Ccr.region t.v (fun s -> s.serving <- s.serving + 1))
    (fun () -> t.res_use ~pid)

let stop _ = ()

let meta =
  Meta.make ~mechanism ~problem:"fcfs"
    ~fragments:
      [ ("fcfs-exclusion", [ "when"; "serving=ticket" ]);
        ("fcfs-order", [ "ticket"; "serving"; "counters" ]) ]
    ~info_access:
      [ (Info.Sync_state, Meta.Indirect); (Info.Request_time, Meta.Indirect) ]
    ~aux_state:[ "ticket dispenser"; "serving counter" ]
    ~separation:Meta.Separated ()
