(** Mutual-exclusion locks, deterministic-run aware.

    This module shadows the stdlib [Mutex] inside [Sync_platform] (and in
    every file that opens it). A mutex created during a {!Detrt} run is a
    virtual-task mutex whose blocking is controlled by the deterministic
    scheduler; anywhere else it is a plain system mutex. Mechanism code is
    written against the ordinary stdlib signature and needs no changes.

    When the {!Deadlock} watchdog is enabled at creation time the mutex
    reports its holder/waiter edges to the wait-for graph.

    When {!Fastpath} is active at creation time the mutex instead uses
    the contention-adaptive tier (E22): a single-word atomic with a CAS
    fast path, a bounded randomized spin on contention, and a parked
    slow path on a private stdlib mutex/condition pair. The observable
    contract is identical; only the cost profile changes.

    When a {!Sync_prims.Prims} class is selected at creation time (E25
    hierarchy runs) the mutex is instead built from that restricted
    atomic class — bakery on read/write registers, test-and-CAS on CAS,
    ticket on fetch-and-add, or an LL/SC-emulated lock.

    When a {!Sync_prims.Queuelock} kind is selected at creation time
    (E23 scalable-lock runs) the mutex is a queue lock with local
    spinning — MCS, CLH, or a proportional-backoff ticket lock — whose
    contended handoff touches one waiter's cache line instead of
    invalidating every spinner. Selection precedence is Det > Prim >
    Queue > Fast > Sys.

    The representation is exposed so that {!Condition} can pair det
    conditions with det mutexes and park waiters of adaptive mutexes;
    treat it as internal. *)

type fast = {
  state : int Atomic.t;
  pm : Stdlib.Mutex.t;
  pc : Stdlib.Condition.t;
}

(** Hot-swappable (E27) cell: the static impl a swappable site is
    currently routed to. Cells are never reused across swaps, so the
    acquire re-check can rely on physical equality. *)
type swap_cell =
  | C_sys of Stdlib.Mutex.t
  | C_fast of fast
  | C_queue of Sync_prims.Queuelock.lock

type swap = { cur : swap_cell Atomic.t; mutable held : swap_cell }

type impl =
  | Sys of Stdlib.Mutex.t
  | Det of Detrt.mutex
  | Fast of fast
  | Prim of Sync_prims.Prims.lock
  | Queue of Sync_prims.Queuelock.lock
  | Swap of swap

type t = {
  impl : impl;
  rid : int;
  name : string;
  mutable acquired_at : int;
}

val fast_lock_raw : fast -> unit
(** Acquire the adaptive lock with no probe/watchdog bookkeeping.
    Internal: used by {!Condition} to re-acquire after a park. *)

val fast_unlock_raw : fast -> unit
(** Release the adaptive lock with no probe/watchdog bookkeeping.
    Internal: used by {!Condition} to release before a park. *)

val swap_lock_raw : swap -> unit
(** Acquire a swappable site with no probe/watchdog bookkeeping: lock
    the current cell, re-check the indirection, retry if a swap was
    published in between. Internal: used by {!Condition}. *)

val swap_unlock_raw : swap -> unit
(** Release the cell the current holder actually locked. Internal:
    used by {!Condition}. *)

val create : ?name:string -> unit -> t
(** System mutex normally; deterministic mutex inside a {!Detrt} run.
    [name] (default ["mutex"]) is the trace site label: when tracing is
    on, [lock]/[unlock] emit acquire and hold spans against it. *)

val lock : t -> unit

val unlock : t -> unit

val try_lock : t -> bool
(** Non-blocking acquire. Under {!Detrt} the attempt is itself a recorded
    scheduling point, so the outcome replays with the schedule. A
    successful attempt emits a zero-wait [Acquire] span when tracing is
    on, so try-lock users show up in profiled acquire counts. *)

val try_lock_for : t -> timeout_ns:int64 -> bool
(** [try_lock_for t ~timeout_ns] polls {!try_lock} until it succeeds or
    the monotonic deadline passes; [true] iff the lock was acquired.
    Real-thread polling uses {!Backoff} exponential backoff between
    attempts. Deterministic under {!Detrt} (the timeout becomes a poll
    budget, see {!Deadline}, and every poll is a scheduling point). *)

val protect : t -> (unit -> 'a) -> 'a
(** [protect m f] runs [f] with [m] held, releasing on any exit. *)

(** {1 Hot-swappable sites (E27)}

    A mutex created inside {!with_swappable} carries one extra
    indirection: an atomic pointer to the cell (sys / fast / queue
    impl) it currently routes through. {!swap_to} retiers a live site
    with an epoch-quiesced protocol — the swapper locks the old cell,
    publishes the fresh one (new acquirers route there immediately),
    then releases; stragglers that locked the old cell re-check the
    indirection, back out and retry, so the old impl drains and mutual
    exclusion is never violated (DPOR-certified by the catalog's
    [swap-excl] scenarios). *)

type tier = [ `Sys | `Fast | `Queue of Sync_prims.Queuelock.kind ]
(** The tiers a swappable site can move between. [Det] is a different
    world and [Prim] a deliberate class restriction; neither swaps. *)

val tier_name : tier -> string
(** ["sys"], ["fast"], ["queue-mcs"], ["queue-clh"], ["queue-ticket"]. *)

val all_tiers : tier list

val tier_index : tier -> int
(** Stable small integer identifying a tier — the [arg] of the [Flip]
    probe instants {!swap_to} emits. *)

val tier_of_index : int -> tier option

val with_swappable : (unit -> 'a) -> 'a
(** Run a thunk with swappable mutex creation selected (precedence Det
    > Swap > Prim > Queue > Fast > Sys), restoring the previous
    selection afterwards. Mutexes created inside the scope start on
    [`Sys]. The site registry is cleared on entry and {e kept} on exit,
    so a controller started after the build scope closes still
    enumerates the run's sites via {!swap_sites}; the next scope clears
    the slate. Concurrent scopes are not supported (same rule as
    {!Fastpath}). *)

val swappable_selected : unit -> bool

val swap_sites : unit -> t list
(** Every swappable mutex created in the most recent scope, newest
    first — the adaptive controller's enumeration point. *)

val current_tier : t -> tier option
(** The tier a swappable site currently routes to; [None] for
    non-swappable mutexes. *)

val swap_to : t -> tier -> bool
(** [swap_to t tier] retiers a swappable site, allocating a fresh cell
    and draining the old one (see above); blocks until the old cell's
    holder — if any — releases. Emits a [Flip] probe instant against
    the site with [arg = tier_index tier]. Returns [false] (and does
    nothing) if [t] is not swappable or already routes to [tier]. *)

(** {1 Spin tuning (E27)} *)

val spin_rounds : unit -> int
(** Backoff rounds a contended fast-tier acquire spins before parking.
    Defaults to 8 on multicore, 0 on a single core. *)

val set_spin_rounds : int -> unit
(** Retune {!spin_rounds} live: the next contended acquisition — on
    any fast-tier mutex — sees the new value. Read on the contended
    slow path only; the uncontended CAS never loads it.
    @raise Invalid_argument on a negative count. *)
