lib/problems/disk_path.ml: Fun Heap Info Meta Semaphore Sync_pathexpr Sync_platform Sync_taxonomy
