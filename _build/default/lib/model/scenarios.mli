(** The paper's staged arguments, verified over {e all} interleavings.

    The thread-based scenario drivers in [sync_problems] stage one
    schedule and observe the outcome; these models close the gap by
    exhaustively exploring every schedule consistent with the staging
    (writer W1 mid-write, writer W2 then reader R queued):

    - {!fig1_anomaly_unavoidable}: in the Figure 1 path-expression
      translation, {b every} complete schedule serves W2's write before
      R's read — footnote 3 is not a scheduling accident but a
      consequence of the solution's structure.
    - {!monitor_readers_priority_correct}: in the Hoare-monitor
      readers-priority solution, {b every} complete schedule serves R
      before W2.
    - {!monitor_release_policy_flip}: flipping only the release-site
      signal choice (the paper's "priority constraint lives in this
      line") provably flips the outcome to writers-first in every
      schedule.

    All three also establish deadlock freedom of the staged scenario. *)

type verdict = {
  states : int;      (** distinct states explored *)
  terminals : int;   (** distinct completion states *)
  holds : bool;      (** the property held on every schedule *)
  detail : string;   (** human-readable summary or counterexample *)
}

val fig1_anomaly_unavoidable : unit -> verdict

val courtois1_anomaly_unavoidable : unit -> verdict
(** Courtois problem 1 under strong (FIFO) semaphores: at W1's release
    the [w] queue is necessarily [W2; R-group], so W2's write precedes
    R's read on every schedule — the finding-beyond-the-paper from E1,
    promoted from "observed" to "structural". *)

val baton_readers_priority_correct : unit -> verdict
(** The baton-passing rewrite: R's read precedes W2's write on every
    schedule. Branching in the baton's SIGNAL is encoded as guards, so a
    schedule violating a staged branch assumption would surface as a
    deadlock — none exists. *)

val monitor_readers_priority_correct : unit -> verdict

val serializer_readers_priority_correct : unit -> verdict
(** The serializer readers-priority solution (guards over crowds and the
    read queue, automatic signalling): R's read precedes W2's write on
    every schedule — completing E17's coverage of the paper's three
    mechanisms. *)

val monitor_release_policy_flip : unit -> verdict

val all : unit -> (string * verdict) list
