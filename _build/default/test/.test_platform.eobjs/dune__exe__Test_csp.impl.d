test/test_csp.ml: Alcotest Atomic Csp Fun List Sync_csp Sync_platform Testutil
