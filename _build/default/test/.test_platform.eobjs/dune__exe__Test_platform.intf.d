test/test_platform.mli:
