(** Machine-readable emission: a minimal JSON document model plus CSV row
    quoting.

    The repo deliberately avoids external JSON dependencies; every
    machine-readable artifact (run reports, the E20 baseline, the
    scorecard export) is built from this value type and printed with
    {!to_string} / {!write_file}. Output is deterministic: object fields
    print in the order given, floats print in a fixed format, and
    non-finite floats degrade to [null] so the documents always parse. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** Render as JSON. [pretty] (default true) indents nested structures
    two spaces per level; compact otherwise. *)

val write_file : string -> t -> unit
(** Write [to_string ~pretty:true] plus a trailing newline to a file,
    creating or truncating it. *)

val csv_line : string list -> string
(** One CSV record: fields are quoted when they contain commas, quotes
    or newlines; embedded quotes are doubled. No trailing newline. *)

exception Parse_error of string

val parse : string -> t
(** Read a JSON document back into the value type. Covers what this
    module emits (and standard JSON generally): objects, arrays, strings
    with escapes ([\uXXXX] decoded to UTF-8; astral surrogate pairs are
    not recombined), numbers, booleans, null. Numbers without [.]/[e]
    parse as {!Int} when they fit. Raises {!Parse_error} on malformed
    input. *)

val parse_file : string -> t
(** {!parse} the entire contents of a file. *)

val member : string -> t -> t option
(** [member key v] is the field [key] of object [v], if both exist. *)

val to_list : t -> t list
(** Elements of a {!List}; [[]] for any other value. *)

val number : t -> float option
(** Numeric value of an {!Int} or {!Float}; [None] otherwise. *)
