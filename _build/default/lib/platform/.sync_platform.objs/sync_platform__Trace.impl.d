lib/platform/trace.ml: Clock Format List Mutex
