lib/problems/bb_csp.ml: Csp Info Meta Sync_csp Sync_platform Sync_taxonomy
