lib/problems/fcfs_sem.ml: Fun Info Meta Semaphore Sync_platform Sync_taxonomy
