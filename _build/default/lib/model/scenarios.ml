open Sysstate

type verdict = {
  states : int;
  terminals : int;
  holds : bool;
  detail : string;
}

let index_of x xs =
  let rec go i = function
    | [] -> None
    | y :: rest -> if y = x then Some i else go (i + 1) rest
  in
  go 0 xs

(* Property helper: event [a] precedes event [b] in the terminal log. *)
let precedes a b state =
  match (index_of a (logged state), index_of b (logged state)) with
  | Some ia, Some ib when ia < ib -> None
  | Some _, Some _ -> Some (Printf.sprintf "%s did not precede %s" a b)
  | _ -> Some (Printf.sprintf "missing events %s/%s" a b)

let verdict_of_check ~expect_what result =
  match result with
  | Ok (stats : Explore.stats) ->
    { states = stats.states; terminals = stats.terminals; holds = true;
      detail = expect_what ^ ": holds on every schedule" }
  | Error msg -> { states = 0; terminals = 0; holds = false; detail = msg }

(* ------------------------------------------------------------------ *)
(* Figure 1, as compiled to semaphores by the Campbell-Habermann
   translation. S1 guards "path writeattempt end"; S2 guards the second
   declaration (the requestread burst counter is c2); S3 guards the third
   (read burst counter c3, and the openwrite;write sequence linked by the
   0-initialized [link]). Writers traverse nested synchronization
   procedures exactly as WRITE = writeattempt(requestwrite(openwrite));
   write does. *)

let writer ~me ~first_guard ~mark_past_s2 ~finish_guard =
  let open Explore in
  { name = me;
    actions =
      [ (let a = Sem.request "S1" ~me in
         { a with guard = (fun t -> first_guard t && a.guard t) }) ]
      @ [ Sem.acquire "S1" ~me ]
      @ Sem.p "S2" ~me
      @ [ Sem.request "S3" ~me;
          (if mark_past_s2 then
             act (me ^ ":past-S2") (fun t -> set_int t "w2_past" 1)
           else act (me ^ ":noop") Fun.id);
          Sem.acquire "S3" ~me;
          Sem.v "link"; Sem.v "S2"; Sem.v "S1" ]
      @ Sem.p "link" ~me
      @ [ act (me ^ ":write-enter") (fun t -> set_int t "writing" 1);
          act (me ^ ":write")
            ~guard:finish_guard
            (fun t ->
              let t = log_event t (me ^ ":write") in
              let t = set_int t "writing" 0 in
              (Sem.v "S3").apply t) ] }

let reader ~me =
  let open Explore in
  { name = me;
    actions =
      [ act (me ^ ":arrive")
          ~guard:(fun t -> List.mem "W2" (sem t "S3").queue)
          (fun t -> set_int t "r_arrived" 1);
        (* requestread prologue: join the path-2 burst (counter c2). *)
        act (me ^ ":requestread")
          ~guard:(fun t -> int_of t "c2" > 0 || Sem.available t "S2")
          (fun t ->
            let t = if int_of t "c2" = 0 then Sem.take t "S2" else t in
            set_int t "c2" (int_of t "c2" + 1));
        (* read prologue: join the path-3 burst (counter c3). *)
        act (me ^ ":read-pro")
          ~guard:(fun t -> int_of t "c3" > 0 || Sem.available t "S3")
          (fun t ->
            let t = if int_of t "c3" = 0 then Sem.take t "S3" else t in
            set_int t "c3" (int_of t "c3" + 1));
        act (me ^ ":read") (fun t -> log_event t (me ^ ":read"));
        act (me ^ ":read-epi") (fun t ->
            let c = int_of t "c3" - 1 in
            let t = set_int t "c3" c in
            if c = 0 then (Sem.v "S3").apply t else t);
        act (me ^ ":requestread-epi") (fun t ->
            let c = int_of t "c2" - 1 in
            let t = set_int t "c2" c in
            if c = 0 then (Sem.v "S2").apply t else t) ] }

let fig1_anomaly_unavoidable () =
  let init =
    init
      ~sems:[ ("S1", 1); ("S2", 1); ("S3", 1); ("link", 0) ]
      ~ints:
        [ ("c2", 0); ("c3", 0); ("writing", 0); ("w2_past", 0);
          ("r_arrived", 0) ]
      ()
  in
  let w1 =
    writer ~me:"W1"
      ~first_guard:(fun _ -> true)
      ~mark_past_s2:false
      ~finish_guard:(fun t -> int_of t "w2_past" = 1 && int_of t "r_arrived" = 1)
  in
  let w2 =
    writer ~me:"W2"
      ~first_guard:(fun t -> int_of t "writing" = 1)
      ~mark_past_s2:true
      ~finish_guard:(fun _ -> true)
  in
  let r = reader ~me:"R" in
  verdict_of_check ~expect_what:"W2:write precedes R:read (the anomaly)"
    (Explore.check ~init
       ~property:(precedes "W2:write" "R:read")
       [ w1; w2; r ])

(* ------------------------------------------------------------------ *)
(* Courtois problem 1 on strong semaphores, staged identically. The
   staging makes R the first (and only) reader, so the rc-conditional
   P(w)/V(w) branches are fixed; rc is still tracked for fidelity. *)

let courtois1_anomaly_unavoidable () =
  let open Explore in
  let init =
    init
      ~sems:[ ("mutex", 1); ("w", 1) ]
      ~ints:[ ("rc", 0); ("writing", 0) ]
      ()
  in
  let w1 =
    { name = "W1";
      actions =
        Sem.p "w" ~me:"W1"
        @ [ act "W1:write-enter" (fun t -> set_int t "writing" 1);
            act "W1:write"
              ~guard:(fun t ->
                List.mem "W2" (sem t "w").queue
                && List.mem "R" (sem t "w").queue)
              (fun t ->
                let t = log_event t "W1:write" in
                let t = set_int t "writing" 0 in
                (Sem.v "w").apply t) ] }
  in
  let w2 =
    let gated =
      let r = Sem.request "w" ~me:"W2" in
      { r with guard = (fun t -> int_of t "writing" = 1 && r.guard t) }
    in
    { name = "W2";
      actions =
        [ gated; Sem.acquire "w" ~me:"W2";
          act "W2:write" (fun t -> (Sem.v "w").apply (log_event t "W2:write"))
        ] }
  in
  let r =
    let gated =
      let r = Sem.request "mutex" ~me:"R" in
      { r with
        guard = (fun t -> List.mem "W2" (sem t "w").queue && r.guard t) }
    in
    { name = "R";
      actions =
        [ gated; Sem.acquire "mutex" ~me:"R";
          act "R:rc++" (fun t -> set_int t "rc" 1) ]
        @ Sem.p "w" ~me:"R" (* first reader locks w, holding mutex *)
        @ [ Sem.v "mutex";
            act "R:read" (fun t -> log_event t "R:read") ]
        @ Sem.p "mutex" ~me:"R"
        @ [ act "R:rc--" (fun t -> set_int t "rc" 0); Sem.v "w";
            Sem.v "mutex" ] }
  in
  verdict_of_check
    ~expect_what:"W2:write precedes R:read (Courtois-1 under FIFO semaphores)"
    (Explore.check ~init
       ~property:(precedes "W2:write" "R:read")
       [ w1; w2; r ])

(* ------------------------------------------------------------------ *)
(* The baton-passing readers-priority rewrite, staged identically. The
   data-dependent SIGNAL branches are encoded as action guards: if some
   schedule reached a release with a different delayed-set than the
   staging implies, the process would have no enabled action and the
   explorer would report a deadlock. None exists. *)

let baton_readers_priority_correct () =
  let open Explore in
  let init =
    init
      ~sems:[ ("e", 1); ("r", 0); ("w", 0) ]
      ~ints:
        [ ("nr", 0); ("nw", 0); ("dr", 0); ("dw", 0); ("writing", 0) ]
      ()
  in
  let w1 =
    { name = "W1";
      actions =
        Sem.p "e" ~me:"W1"
        @ [ act "W1:claim" (fun t -> set_int t "nw" 1); Sem.v "e";
            act "W1:write-enter" (fun t -> set_int t "writing" 1);
            act "W1:write"
              ~guard:(fun t -> int_of t "dw" = 1 && int_of t "dr" = 1)
              (fun t -> set_int t "writing" 0 |> Fun.flip log_event "W1:write")
          ]
        @ Sem.p "e" ~me:"W1"
        @ [ (* exit protocol: nw:=0 then SIGNAL; staging fixes the branch:
               dr=1, so the baton passes to the reader. *)
            act "W1:signal-pass-to-reader"
              ~guard:(fun t -> int_of t "dr" = 1)
              (fun t ->
                let t = set_int t "nw" 0 in
                let t = set_int t "dr" 0 in
                let t = set_int t "nr" 1 in
                (Sem.v "r").apply t) ] }
  in
  let w2 =
    let gated =
      let rq = Sem.request "e" ~me:"W2" in
      { rq with guard = (fun t -> int_of t "writing" = 1 && rq.guard t) }
    in
    { name = "W2";
      actions =
        [ gated; Sem.acquire "e" ~me:"W2";
          (* nw=1: delay myself. *)
          act "W2:delay" (fun t -> set_int t "dw" (int_of t "dw" + 1));
          Sem.v "e" ]
        @ Sem.p "w" ~me:"W2"
        @ [ Sem.v "e" (* baton convention: resume then release e *) ]
        @ [ act "W2:write" (fun t -> log_event t "W2:write") ]
        @ Sem.p "e" ~me:"W2"
        @ [ act "W2:signal-none"
              ~guard:(fun t -> int_of t "dr" = 0 && int_of t "dw" = 0)
              (fun t -> (Sem.v "e").apply (set_int t "nw" 0)) ] }
  in
  let r =
    let gated =
      let rq = Sem.request "e" ~me:"R" in
      { rq with guard = (fun t -> int_of t "dw" = 1 && rq.guard t) }
    in
    { name = "R";
      actions =
        [ gated; Sem.acquire "e" ~me:"R";
          act "R:delay" (fun t -> set_int t "dr" (int_of t "dr" + 1));
          Sem.v "e" ]
        @ Sem.p "r" ~me:"R"
        @ [ (* resumed with nr already set by the passer; cascade SIGNAL:
               dr=0 now, nw=0, nr=1 -> release e. *)
            act "R:signal-none"
              ~guard:(fun t -> int_of t "dr" = 0)
              (fun t -> (Sem.v "e").apply t);
            act "R:read" (fun t -> log_event t "R:read") ]
        @ Sem.p "e" ~me:"R"
        @ [ act "R:exit-signal-pass-to-writer"
              ~guard:(fun t -> int_of t "dw" = 1)
              (fun t ->
                let t = set_int t "nr" 0 in
                let t = set_int t "dw" 0 in
                let t = set_int t "nw" 1 in
                (Sem.v "w").apply t) ] }
  in
  verdict_of_check
    ~expect_what:"R:read precedes W2:write (baton readers-priority)"
    (Explore.check ~init
       ~property:(precedes "R:read" "W2:write")
       [ w1; w2; r ])

(* ------------------------------------------------------------------ *)
(* The Hoare-monitor readers-priority solution, staged identically.
   The release policy is the one line under test. *)

let mon_writer ~me ~first_guard ~finish_guard ~release_first ~release_otherwise
    =
  let open Explore in
  let gated_enter =
    match Mon.enter "M" ~me with
    | [ req; acq ] ->
      [ { req with guard = (fun t -> first_guard t && req.guard t) }; acq ]
    | _ -> assert false
  in
  { name = me;
    actions =
      gated_enter
      @ (if me = "W1" then
           [ act (me ^ ":set-writing") (fun t -> set_int t "writing" 1) ]
         else
           Mon.wait "M" ~cond:"okw" ~me
           @ [ act (me ^ ":set-writing") (fun t -> set_int t "writing" 1) ])
      @ [ Mon.exit "M" ~me;
          act (me ^ ":write")
            ~guard:finish_guard
            (fun t -> log_event t (me ^ ":write")) ]
      @ Mon.enter "M" ~me
      @ [ act (me ^ ":clear-writing") (fun t -> set_int t "writing" 0) ]
      @ Mon.signal_priority "M" ~first:release_first
          ~otherwise:release_otherwise ~me
      @ [ Mon.exit "M" ~me ] }

let mon_reader ~me =
  let open Explore in
  let gated_enter =
    match Mon.enter "M" ~me with
    | [ req; acq ] ->
      [ { req with
          guard = (fun t -> Mon.waiting_on t "M" ~cond:"okw" "W2" && req.guard t)
        };
        acq ]
    | _ -> assert false
  in
  { name = me;
    actions =
      gated_enter
      @ Mon.wait "M" ~cond:"okr" ~me
      @ [ act (me ^ ":count-in") (fun t -> set_int t "readers" 1) ]
      @ Mon.signal "M" ~cond:"okr" ~me (* cascade; empty here *)
      @ [ Mon.exit "M" ~me;
          act (me ^ ":read") (fun t -> log_event t (me ^ ":read")) ]
      @ Mon.enter "M" ~me
      @ [ act (me ^ ":count-out") (fun t -> set_int t "readers" 0) ]
      @ Mon.signal "M" ~cond:"okw" ~me
      @ [ Mon.exit "M" ~me ] }

let monitor_scenario ~release_first ~release_otherwise ~property ~expect_what
    () =
  let init =
    init ~mons:[ "M" ]
      ~conds:[ ("M", [ "okr"; "okw" ]) ]
      ~ints:[ ("writing", 0); ("readers", 0) ]
      ()
  in
  let w1 =
    mon_writer ~me:"W1"
      ~first_guard:(fun _ -> true)
      ~finish_guard:(fun t ->
        Mon.waiting_on t "M" ~cond:"okw" "W2"
        && Mon.waiting_on t "M" ~cond:"okr" "R")
      ~release_first ~release_otherwise
  in
  let w2 =
    mon_writer ~me:"W2"
      ~first_guard:(fun t -> int_of t "writing" = 1)
      ~finish_guard:(fun _ -> true)
      ~release_first ~release_otherwise
  in
  let r = mon_reader ~me:"R" in
  verdict_of_check ~expect_what
    (Explore.check ~init ~property [ w1; w2; r ])

(* ------------------------------------------------------------------ *)
(* The serializer readers-priority solution, staged identically: one
   queue per type, readers crowd / writers crowd, automatic signalling.
   Guards mirror Rw_ser.Readers_prio: a reader may leave readq when no
   writer is in its crowd; a writer may leave writeq only when both
   crowds are empty AND no reader is waiting. *)

let serializer_readers_priority_correct () =
  let open Explore in
  let guards : Ser.guards =
    [ ("readq", fun t -> List.assoc "writers" (ser t "S").crowds = 0);
      ( "writeq",
        fun t ->
          let s = ser t "S" in
          List.assoc "writers" s.crowds = 0
          && List.assoc "readers" s.crowds = 0
          && List.assoc "readq" s.queues = [] ) ]
  in
  let init =
    init
      ~sers:[ ("S", [ "readq"; "writeq" ], [ "readers"; "writers" ]) ]
      ~ints:[ ("writing", 0) ]
      ()
  in
  let ser_writer ~me ~first_guard ~finish_guard =
    let gated =
      match Ser.acquire "S" ~me with
      | [ req; poss ] ->
        [ { req with guard = (fun t -> first_guard t && req.guard t) }; poss ]
      | _ -> assert false
    in
    { name = me;
      actions =
        gated
        @ Ser.enqueue "S" ~q:"writeq" ~me ~guards
        @ [ Ser.join_crowd "S" ~crowd:"writers" ~me ~guards;
            act (me ^ ":write-enter") (fun t -> set_int t "writing" 1);
            act (me ^ ":write")
              ~guard:finish_guard
              (fun t -> set_int (log_event t (me ^ ":write")) "writing" 0) ]
        @ Ser.leave_crowd "S" ~crowd:"writers" ~me
        @ [ Ser.release "S" ~guards ~me ] }
  in
  let w1 =
    ser_writer ~me:"W1"
      ~first_guard:(fun _ -> true)
      ~finish_guard:(fun t ->
        Ser.waiting_in t "S" ~q:"writeq" "W2"
        && Ser.waiting_in t "S" ~q:"readq" "R")
  in
  let w2 =
    ser_writer ~me:"W2"
      ~first_guard:(fun t -> int_of t "writing" = 1)
      ~finish_guard:(fun _ -> true)
  in
  let r =
    let gated =
      match Ser.acquire "S" ~me:"R" with
      | [ req; poss ] ->
        [ { req with
            guard = (fun t -> Ser.waiting_in t "S" ~q:"writeq" "W2" && req.guard t)
          };
          poss ]
      | _ -> assert false
    in
    { name = "R";
      actions =
        gated
        @ Ser.enqueue "S" ~q:"readq" ~me:"R" ~guards
        @ [ Ser.join_crowd "S" ~crowd:"readers" ~me:"R" ~guards;
            act "R:read" (fun t -> log_event t "R:read") ]
        @ Ser.leave_crowd "S" ~crowd:"readers" ~me:"R"
        @ [ Ser.release "S" ~guards ~me:"R" ] }
  in
  verdict_of_check
    ~expect_what:"R:read precedes W2:write (serializer readers-priority)"
    (Explore.check ~init
       ~property:(precedes "R:read" "W2:write")
       [ w1; w2; r ])

let monitor_readers_priority_correct () =
  monitor_scenario ~release_first:"okr" ~release_otherwise:"okw"
    ~property:(precedes "R:read" "W2:write")
    ~expect_what:"R:read precedes W2:write (readers-priority)" ()

let monitor_release_policy_flip () =
  monitor_scenario ~release_first:"okw" ~release_otherwise:"okr"
    ~property:(precedes "W2:write" "R:read")
    ~expect_what:"W2:write precedes R:read (writers-first release)" ()

let all () =
  [ ("fig1-anomaly-unavoidable", fig1_anomaly_unavoidable ());
    ("courtois1-anomaly", courtois1_anomaly_unavoidable ());
    ("baton-readers-priority", baton_readers_priority_correct ());
    ("serializer-readers-priority", serializer_readers_priority_correct ());
    ("monitor-readers-priority", monitor_readers_priority_correct ());
    ("monitor-release-flip", monitor_release_policy_flip ()) ]
