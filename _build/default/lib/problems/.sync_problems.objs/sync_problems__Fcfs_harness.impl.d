lib/problems/fcfs_harness.ml: Atomic Fcfs_intf Fun Ivl Latch List Printf Process Sync_platform Sync_resources Thread Trace
