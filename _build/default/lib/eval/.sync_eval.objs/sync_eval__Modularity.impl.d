lib/eval/modularity.ml: Float Format List Meta Registry Sync_taxonomy
