(* Quickstart: a monitor-protected bounded buffer in a dozen lines.

   Two producers and two consumers share a 4-slot buffer built from the
   public API: the self-checking ring resource, the Hoare-monitor
   synchronizer from [sync_problems], and the thread/domain-agnostic
   process layer. Run with:

     dune exec examples/quickstart.exe
*)

let () =
  let ring = Sync_resources.Ring.create 4 in
  let buffer =
    Sync_problems.Bb_mon.create ~capacity:4
      ~put:(fun ~pid:_ v -> Sync_resources.Ring.put ring v)
      ~get:(fun ~pid:_ -> Sync_resources.Ring.get ring)
  in
  let items_each = 10 in
  let producer pid () =
    for k = 1 to items_each do
      Sync_problems.Bb_mon.put buffer ~pid ((100 * pid) + k);
      Printf.printf "producer %d put %d\n%!" pid ((100 * pid) + k)
    done
  in
  let consumer pid () =
    for _ = 1 to items_each do
      let v = Sync_problems.Bb_mon.get buffer ~pid in
      Printf.printf "                 consumer %d got %d\n%!" pid v
    done
  in
  Sync_platform.Process.run_all ~backend:`Thread
    [ producer 1; producer 2; consumer 3; consumer 4 ];
  print_endline "quickstart: all items transferred, buffer invariants held"
