module Probe = Sync_trace.Probe
module Prims = Sync_prims.Prims

type fairness = [ `Strong | `Weak ]

module Counting = struct
  type queued = {
    mutex : Mutex.t;
    fairness : fairness;
    (* Strong: selective-wakeup queue; each waiter is woken exactly once and
       its P is thereby granted (the value was consumed by the waker). *)
    queue : unit Waitq.t;
    (* Weak: ordinary condition broadcast; woken waiters race to re-check. *)
    cond : Condition.t;
    mutable value : int;
    mutable weak_waiters : int;
    (* Watchdog resource id for the weak (condition-loop) path; the strong
       path's edges are reported by the Waitq itself. -1 = watchdog off. *)
    srid : int;
  }

  (* Fast weak tier (E22): the value lives in an atomic that is never
     negative. P consumes a unit with a CAS-retry that only runs while
     the observed value is positive; V publishes with one fetch-and-add
     and touches [flock] only when a waiter is actually parked. The
     textbook "go negative and owe a wakeup" benaphore is deliberately
     avoided: with timed and abortable Ps, a debtor repaying its debt
     while a V's wakeup ticket is in flight can double-count a unit.
     Keeping the value non-negative makes every transition a plain
     consume or produce, so conservation holds under any abort.

     Strong (FCFS) mode never uses this tier: arrival-order grants need
     the queue, and a CAS fast path is exactly a barging path. *)
  type fast = {
    fvalue : int Atomic.t; (* current value, >= 0 *)
    fwaiters : int Atomic.t; (* parked or about-to-park slow-path Ps *)
    flock : Stdlib.Mutex.t;
    fcond : Stdlib.Condition.t;
    frid : int; (* watchdog id; -1 = watchdog off at creation *)
  }

  (* Class-restricted tier (E25): the whole semaphore protocol comes
     from [Sync_prims], built on the selected atomic class alone. RW ×
     [`Strong] is rejected there with a typed {!Prims.Unsupported} —
     arrival-order grants need an order-assigning RMW — and the
     hierarchy axis records that as a result, not a crash. *)
  type prim = {
    psem : Prims.sem;
    prid : int; (* watchdog id; -1 = watchdog off at creation *)
  }

  type t = Queued of queued | Fast of fast | Prim of prim

  let create ?(fairness = `Strong) n =
    if n < 0 then invalid_arg "Semaphore.Counting.create: negative value";
    let cls =
      if Detrt.active () then None
      else
        match Prims.selected () with
        | Some _ as c -> c
        | None -> (
          (* Queue tier (E23): semaphores map onto the FAA-class
             constructions — the FIFO ticket semaphore for [`Strong],
             value-netting for [`Weak] — so the tier's ticket
             discipline covers semaphores too, not just mutexes. *)
          match Sync_prims.Queuelock.selected () with
          | Some _ -> Some Prims.FAA
          | None -> None)
    in
    match cls with
    | Some c ->
      Prim
        { psem = Prims.make_sem c ~fairness n;
          prid =
            (if Deadlock.enabled () then
               Deadlock.register ~kind:"semaphore" ()
             else -1) }
    | None ->
      if fairness = `Weak && Fastpath.active () then
        Fast
          { fvalue = Atomic.make n;
            fwaiters = Atomic.make 0;
            flock = Stdlib.Mutex.create ();
            fcond = Stdlib.Condition.create ();
            frid =
              (if Deadlock.enabled () then
                 Deadlock.register ~kind:"semaphore" ()
               else -1) }
      else
        Queued
          { mutex = Mutex.create ~name:"sem.lock" (); fairness;
            queue = Waitq.create ~name:"sem.q" ();
            cond = Condition.create (); value = n; weak_waiters = 0;
            srid =
              (if Deadlock.enabled () then
                 Deadlock.register ~kind:"semaphore" ()
               else -1) }

  (* ---------------- queued (default) tier ---------------- *)

  (* A P abort after the wake was consumed would leak the unit of value the
     waker handed us; re-route it to the next waiter (or back to the
     counter) before propagating. *)
  let redonate t () =
    if not (Waitq.wake_first t.queue) then t.value <- t.value + 1

  let queued_p t =
    Mutex.protect t.mutex (fun () ->
        Fault.site "semaphore.pre-wait";
        match t.fairness with
        | `Strong ->
          (* A newcomer must not overtake parked waiters even if value > 0:
             strong semantics grant strictly in arrival order. *)
          if t.value > 0 && Waitq.is_empty t.queue then t.value <- t.value - 1
          else Waitq.wait t.queue ~lock:t.mutex () ~on_abort:(redonate t)
        | `Weak -> (
          t.weak_waiters <- t.weak_waiters + 1;
          if t.srid >= 0 then Deadlock.blocked t.srid;
          match
            if t.value = 0 then begin
              let t0 = Probe.now () in
              Condition.wait t.cond t.mutex;
              while t.value = 0 do
                (* Broadcast race lost: another woken waiter took the unit. *)
                Probe.instant Spurious ~site:"sem.cond" ~arg:0;
                Condition.wait t.cond t.mutex
              done;
              Probe.span Wait ~site:"sem.cond" ~since:t0 ~arg:t.weak_waiters
            end
          with
          | () ->
            if t.srid >= 0 then Deadlock.unblocked ();
            t.weak_waiters <- t.weak_waiters - 1;
            t.value <- t.value - 1
          | exception e ->
            if t.srid >= 0 then Deadlock.unblocked ();
            t.weak_waiters <- t.weak_waiters - 1;
            raise e))

  let queued_acquire_for t ~deadline =
    Mutex.protect t.mutex (fun () ->
        Fault.site "semaphore.pre-wait";
        match t.fairness with
        | `Strong ->
          if t.value > 0 && Waitq.is_empty t.queue then begin
            t.value <- t.value - 1;
            true
          end
          else
            Waitq.wait_for t.queue ~lock:t.mutex ~deadline ()
              ~on_abort:(redonate t)
        | `Weak -> (
          t.weak_waiters <- t.weak_waiters + 1;
          if t.srid >= 0 then Deadlock.blocked t.srid;
          let rec poll () =
            if t.value > 0 then true
            else if Condition.wait_for t.cond t.mutex ~deadline then poll ()
            else t.value > 0
          in
          match poll () with
          | got ->
            if t.srid >= 0 then Deadlock.unblocked ();
            t.weak_waiters <- t.weak_waiters - 1;
            if got then t.value <- t.value - 1;
            got
          | exception e ->
            if t.srid >= 0 then Deadlock.unblocked ();
            t.weak_waiters <- t.weak_waiters - 1;
            raise e))

  let queued_v t =
    Mutex.protect t.mutex (fun () ->
        match t.fairness with
        | `Strong ->
          (* Hand the unit of value directly to the oldest waiter if any. *)
          if not (Waitq.wake_first t.queue) then t.value <- t.value + 1
        | `Weak ->
          t.value <- t.value + 1;
          if Probe.enabled () then
            Probe.instant Signal ~site:"sem.cond" ~arg:t.weak_waiters;
          Condition.signal t.cond)

  (* Batched V: publish [n] units under one lock acquisition and one
     wake pass, instead of n lock round-trips each rescanning the
     queue. Strong mode hands units to the n oldest waiters in one
     Waitq.wake_n sweep; weak mode bumps the value once and issues a
     single broadcast (n signals would wake n waiters anyway; the
     broadcast is the level-triggered equivalent). *)
  let queued_v_n t n =
    Mutex.protect t.mutex (fun () ->
        match t.fairness with
        | `Strong ->
          let woken = Waitq.wake_n t.queue n in
          if woken < n then t.value <- t.value + (n - woken)
        | `Weak ->
          t.value <- t.value + n;
          if Probe.enabled () then
            Probe.instant Signal ~site:"sem.cond" ~arg:t.weak_waiters;
          Condition.broadcast t.cond)

  let queued_try_p t =
    Mutex.protect t.mutex (fun () ->
        let ok =
          match t.fairness with
          | `Strong -> t.value > 0 && Waitq.is_empty t.queue
          | `Weak -> t.value > 0
        in
        if ok then t.value <- t.value - 1;
        ok)

  (* ---------------- fast weak tier ---------------- *)

  (* Consume one unit iff the value is positive; CAS failures (another
     P or V moved the value) retry with backoff as long as a unit
     remains visible. Returns false only after observing value = 0. *)
  let rec fast_try_dec f b =
    let v = Atomic.get f.fvalue in
    v > 0
    && (Atomic.compare_and_set f.fvalue v (v - 1)
       ||
       (Backoff.once b;
        fast_try_dec f b))

  let fast_p f =
    Fault.site "semaphore.pre-wait";
    let b = Backoff.create () in
    if not (fast_try_dec f b) then begin
      (* Value exhausted: park. The waiter count is bumped under
         [flock] before the final re-check, so a V that makes the value
         positive after our last failed look must observe
         [fwaiters > 0] and take the signal path (SC atomics give the
         usual "either V sees the waiter or the waiter sees the value"
         disjunction). *)
      let t0 = Probe.now () in
      Stdlib.Mutex.lock f.flock;
      Atomic.incr f.fwaiters;
      if f.frid >= 0 then Deadlock.blocked f.frid;
      let rec park first =
        if not (fast_try_dec f b) then begin
          if not first then
            (* Signal race lost: a barging fast-path P took the unit. *)
            Probe.instant Spurious ~site:"sem.fast" ~arg:0;
          Stdlib.Condition.wait f.fcond f.flock;
          park false
        end
      in
      (match park true with
      | () -> ()
      | exception e ->
        Atomic.decr f.fwaiters;
        if f.frid >= 0 then Deadlock.unblocked ();
        Stdlib.Mutex.unlock f.flock;
        raise e);
      Atomic.decr f.fwaiters;
      if f.frid >= 0 then Deadlock.unblocked ();
      Stdlib.Mutex.unlock f.flock;
      if t0 <> 0 then
        Probe.span Wait ~site:"sem.fast" ~since:t0 ~arg:(Atomic.get f.fwaiters)
    end

  let fast_v_units f n =
    ignore (Atomic.fetch_and_add f.fvalue n);
    if Probe.enabled () then
      Probe.instant Signal ~site:"sem.fast" ~arg:(Atomic.get f.fwaiters);
    if Atomic.get f.fwaiters > 0 then begin
      Stdlib.Mutex.lock f.flock;
      if n = 1 then Stdlib.Condition.signal f.fcond
      else Stdlib.Condition.broadcast f.fcond;
      Stdlib.Mutex.unlock f.flock
    end

  (* Timed P on the fast tier polls with backoff instead of parking:
     stdlib condition variables cannot time out, and the default tier's
     timed weak wait is the same unlock/yield/relock polling one layer
     down (Condition.wait_for). The deadline bounds the loop. *)
  let fast_acquire_for f ~deadline =
    Fault.site "semaphore.pre-wait";
    let b = Backoff.create () in
    let rec loop () =
      if fast_try_dec f b then true
      else if Deadline.expired deadline then false
      else begin
        Backoff.once b;
        loop ()
      end
    in
    loop ()

  (* ---------------- class-restricted (E25) tier ---------------- *)

  (* Try-first so an uncontended P never touches the watchdog; the
     blocking path brackets the prim semaphore's own wait (spin/park
     discipline lives inside [Sync_prims]) with the usual watchdog and
     probe bookkeeping under the "sem.prim" site. *)
  let prim_p p =
    Fault.site "semaphore.pre-wait";
    if not (p.psem.Prims.sm_try ()) then begin
      let t0 = Probe.now () in
      if p.prid >= 0 then Deadlock.blocked p.prid;
      (match p.psem.Prims.sm_p () with
      | () -> if p.prid >= 0 then Deadlock.unblocked ()
      | exception e ->
        if p.prid >= 0 then Deadlock.unblocked ();
        raise e);
      if t0 <> 0 then
        Probe.span Wait ~site:"sem.prim" ~since:t0
          ~arg:(p.psem.Prims.sm_waiters ())
    end

  let prim_acquire_for p ~deadline =
    Fault.site "semaphore.pre-wait";
    p.psem.Prims.sm_try ()
    || begin
         if p.prid >= 0 then Deadlock.blocked p.prid;
         match
           p.psem.Prims.sm_p_poll (fun () -> Deadline.expired deadline)
         with
         | got ->
           if p.prid >= 0 then Deadlock.unblocked ();
           got
         | exception e ->
           if p.prid >= 0 then Deadlock.unblocked ();
           raise e
       end

  let prim_v p n =
    p.psem.Prims.sm_v n;
    if Probe.enabled () then
      Probe.instant Signal ~site:"sem.prim" ~arg:(p.psem.Prims.sm_waiters ())

  (* ---------------- dispatch ---------------- *)

  let p = function
    | Queued q -> queued_p q
    | Fast f -> fast_p f
    | Prim pr -> prim_p pr

  let acquire_for t ~timeout_ns =
    let deadline = Deadline.after_ns timeout_ns in
    match t with
    | Queued q -> queued_acquire_for q ~deadline
    | Fast f -> fast_acquire_for f ~deadline
    | Prim pr -> prim_acquire_for pr ~deadline

  let v = function
    | Queued q -> queued_v q
    | Fast f -> fast_v_units f 1
    | Prim pr -> prim_v pr 1

  let v_n t n =
    if n < 0 then invalid_arg "Semaphore.Counting.v_n: negative count";
    if n > 0 then
      match t with
      | Queued q -> queued_v_n q n
      | Fast f -> fast_v_units f n
      | Prim pr -> prim_v pr n

  let try_p = function
    | Queued q -> queued_try_p q
    | Fast f -> fast_try_dec f (Backoff.create ())
    | Prim pr -> pr.psem.Prims.sm_try ()

  let value = function
    | Queued q -> Mutex.protect q.mutex (fun () -> q.value)
    | Fast f -> Atomic.get f.fvalue
    | Prim pr -> pr.psem.Prims.sm_value ()

  let waiters = function
    | Queued q ->
      Mutex.protect q.mutex (fun () ->
          match q.fairness with
          | `Strong -> Waitq.length q.queue
          | `Weak -> q.weak_waiters)
    | Fast f -> Atomic.get f.fwaiters
    | Prim pr -> pr.psem.Prims.sm_waiters ()
end

(* Binary semaphores have no class-restricted tier of their own: they
   are built on [Mutex] + [Waitq], so under an E25 class selection the
   guard mutex itself is the class-restricted lock and the queueing
   layer rides on it unchanged. *)
module Binary = struct
  type t = { mutex : Mutex.t; queue : unit Waitq.t; mutable value : int }

  let create open_ =
    { mutex = Mutex.create ~name:"binsem.lock" ();
      queue = Waitq.create ~name:"binsem.q" ();
      value = (if open_ then 1 else 0) }

  let redonate t () = if not (Waitq.wake_first t.queue) then t.value <- 1

  let p t =
    Mutex.protect t.mutex (fun () ->
        Fault.site "semaphore.pre-wait";
        if t.value = 1 && Waitq.is_empty t.queue then t.value <- 0
        else Waitq.wait t.queue ~lock:t.mutex () ~on_abort:(redonate t))

  let acquire_for t ~timeout_ns =
    let deadline = Deadline.after_ns timeout_ns in
    Mutex.protect t.mutex (fun () ->
        Fault.site "semaphore.pre-wait";
        if t.value = 1 && Waitq.is_empty t.queue then begin
          t.value <- 0;
          true
        end
        else
          Waitq.wait_for t.queue ~lock:t.mutex ~deadline ()
            ~on_abort:(redonate t))

  let v t =
    Mutex.protect t.mutex (fun () ->
        if t.value = 1 then invalid_arg "Semaphore.Binary.v: already open";
        if not (Waitq.wake_first t.queue) then t.value <- 1)

  let value t = Mutex.protect t.mutex (fun () -> t.value)
end
