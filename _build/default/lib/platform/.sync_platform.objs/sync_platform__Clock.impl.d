lib/platform/clock.ml: Condition Int64 Mutex Unix
