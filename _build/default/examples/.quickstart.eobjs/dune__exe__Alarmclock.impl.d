examples/alarmclock.ml: Alarm_csp Alarm_intf Alarm_mon Alarm_ser Array List Mutex Printf String Sync_platform Sync_problems Thread
