(** The E27 self-tuning controller.

    A low-frequency sampler thread closes the feedback loop from the
    E21 contention probes to the platform's tier knobs. Each sample it

    - reads the live probe rings with {!Sync_trace.Probe.live_snapshot}
      (the seqlock read path — never a torn slot, never a pause for
      the writers),
    - folds the events newer than the previous sample into per-site
      wait/hold statistics,
    - classifies every hot-swappable site ({!Sync_platform.Mutex.swap_sites})
      by its wait/hold ratio and, after a hysteresis streak, retiers it
      in place with {!Sync_platform.Mutex.swap_to}, and
    - steers the global spin-vs-park budget
      ({!Sync_platform.Mutex.set_spin_rounds},
      {!Sync_prims.Backoff.set_limits}) from the observed wait scale.

    Every accepted flip is also an instant event in the exported Chrome
    trace (emitted by [swap_to] itself), so a timeline shows exactly
    when and why the controller moved a site.

    The classifier and its policy are pure and exported so tests can
    drive them without threads or timing. *)

type policy = {
  sample_every_ms : int;  (** sampler period *)
  min_samples : int;
      (** acquires a site must log in one window before it is classified
          (and the whole process must log before spin steering runs) *)
  fast_below : float;
      (** wait/hold ratio at or below which a site wants [`Fast] *)
  queue_above : float;
      (** wait/hold ratio at or above which a site wants [`Queue] *)
  queue_min_wait_ns : float;
      (** absolute mean-wait floor on a [`Queue] vote: a high ratio
          over sub-microsecond waits is short-hold handoff overhead
          (served better by the CAS fast path), not a convoy *)
  hysteresis : int;
      (** consecutive agreeing windows before a flip is executed; each
          executed flip doubles the streak the next one needs, damping
          ping-pong on a noisy classifier boundary *)
  queue_kind : Sync_prims.Queuelock.kind;
      (** queue-lock kind the contended tier uses *)
  tune_spin : bool;  (** enable the global spin/backoff actuator *)
  spin_cutoff_ns : float;
      (** mean wait below which spinning is grown, above which cut *)
  revert_factor : float;
      (** every flip is a trial: if the next full window's mean wait
          exceeds the pre-flip baseline by this factor, the flip is
          reverted and that tier banned for the site — the ratio signal
          alone cannot see that a flip made things worse, because a
          worse tier produces the same vote even harder *)
}

val default_policy : policy
(** 10 ms windows, 32-acquire floor, fast below 0.5, queue above 4.0
    with a 20 us wait floor, hysteresis 2, MCS, spin tuning on with a
    5 us cutoff, revert at 1.5x. *)

(** {1 Pure decision core} *)

type stats = {
  mutable acquires : int;
  mutable wait_ns : int;
  mutable holds : int;
  mutable hold_ns : int;
}
(** One site's activity in one sampling window. *)

val fold_window :
  since:int -> Sync_trace.Probe.event list -> (string, stats) Hashtbl.t
(** Aggregate [Acquire] (wait) and [Hold] spans with [t0 > since] into
    per-site statistics; other kinds are ignored. *)

val classify : policy -> stats -> Sync_platform.Mutex.tier option
(** The tier this window votes for, or [None] below the sample floor.
    The index is the mean-wait / mean-hold ratio: waiting a small
    fraction of a hold means the CAS fast path wins; waiting several
    multiples of it means handoff dominates and the queue lock scales;
    between the thresholds the system mutex is the safe middle. *)

(** {1 The running controller} *)

type decision = {
  d_site : string;
  d_tier : Sync_platform.Mutex.tier;
  d_wait_ns : float;  (** mean wait in the deciding window *)
  d_ratio : float;  (** wait/hold ratio in the deciding window *)
}
(** One executed flip, for reports and tests. *)

type t

val create : ?policy:policy -> unit -> t
(** A controller handle with no sampler thread — the deterministic-test
    entry: drive it with {!sample_once}, release it with {!stop} (which
    restores the spin/backoff globals captured here, as for any
    controller). *)

val start : ?policy:policy -> unit -> t
(** Launch the sampler thread. Sites created before or after the call
    are both seen — the registry is re-enumerated every sample. *)

val stop : t -> unit
(** Stop and join the sampler, then restore the spin rounds and backoff
    limits observed at {!start} (flipped sites keep their tiers — they
    are per-site state, swappable again by the next controller). *)

val sample_once : t -> unit
(** Run one sampling iteration synchronously on the calling thread —
    deterministic-test entry; the sampler thread calls exactly this. *)

val decisions : t -> decision list
(** Executed flips, oldest first. Thread-safe. *)

val flips : t -> int

val samples : t -> int
(** Sampling iterations completed so far. *)

val with_controller : ?policy:policy -> (unit -> 'a) -> 'a * t
(** Run [f] under a live controller; stop it (even on raise) and return
    [f]'s result with the stopped controller for inspection. *)
