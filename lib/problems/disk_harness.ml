(** Workload drivers and checkers for the disk-head scheduler.

    SCAN order is timing-sensitive in free-running workloads, so the
    conformance check is {e staged}: a holder occupies the disk at a known
    track, a batch of requests parks (each with a settle delay), the
    holder releases, and the drain order must equal the pure elevator
    order computed from the batch — ascending tracks at or above the
    head, then descending below it. The stress driver checks exclusion
    and completion under noise and reports total arm travel (the figure
    of merit for bench E-disk, SCAN vs the {!Disk_fcfs} baseline). *)

open Sync_platform

let holder_pid = 999

(* Pure elevator drain order for a pending batch, head at [h] sweeping up
   (the staging leaves every solution in that state). *)
let expected_scan ~head tracks =
  let up = List.filter (fun t -> t >= head) tracks in
  let down = List.filter (fun t -> t < head) tracks in
  List.sort compare up @ List.rev (List.sort compare down)

let run_staged (module S : Disk_intf.S) ?(tracks = 100) ?(head = 50)
    ?(batch = [ 10; 60; 55; 20; 90; 5; 75 ]) ?settle () =
  let settle =
    match settle with
    | Some s -> s
    | None -> Testwait.settle_s ~default:0.02 ()
  in
  let trace = Trace.create () in
  let gate = Latch.create 1 in
  let res_access ~pid track =
    Trace.record trace ~pid ~op:"access" ~phase:Trace.Enter ~arg:track ();
    if pid = holder_pid then Latch.wait gate;
    Trace.record trace ~pid ~op:"access" ~phase:Trace.Exit ~arg:track ()
  in
  let t = S.create ~tracks ~access:res_access in
  let holder =
    Process.spawn ~backend:`Thread (fun () -> S.access t ~pid:holder_pid head)
  in
  Testwait.until "holder entered" (fun () ->
      List.exists
        (fun (e : Trace.event) -> e.pid = holder_pid && e.phase = Trace.Enter)
        (Trace.events trace));
  let requesters =
    List.mapi
      (fun i track ->
        let r =
          Process.spawn ~backend:`Thread (fun () -> S.access t ~pid:i track)
        in
        Thread.delay settle;
        r)
      batch
  in
  Latch.arrive gate;
  Process.join holder;
  List.iter Process.join requesters;
  S.stop t;
  let events = Trace.events trace in
  let order =
    List.filter_map
      (fun i ->
        if i.Ivl.pid = holder_pid then None else Some i.Ivl.arg)
      (Ivl.intervals events)
  in
  (order, expected_scan ~head batch, events)

let verify_scan ?batch (module S : Disk_intf.S) =
  let got, expected, events = run_staged (module S) ?batch () in
  match Ivl.check_wellformed events with
  | Error _ as e -> e
  | Ok () ->
    if got = expected then Ok ()
    else
      Error
        (Printf.sprintf "SCAN order violated: served [%s], elevator wants [%s]"
           (String.concat "; " (List.map string_of_int got))
           (String.concat "; " (List.map string_of_int expected)))

(* Free-running stress: correctness = exclusion + completion; returns the
   accumulated arm travel for throughput/travel comparisons. *)
let run_stress (module S : Disk_intf.S) ?(tracks = 200) ?(workers = 6)
    ?(requests_each = 30) ?(work = 60) ?(hold_s = 0.0) ~seed () =
  let trace = Trace.create () in
  let disk = Sync_resources.Disk.create ~work ~tracks () in
  let res_access ~pid track =
    ignore pid;
    Sync_resources.Disk.access disk track;
    (* A real sleep releases the runtime lock deterministically, letting a
       request backlog build even on one core — cooperative spinning alone
       does not reliably deschedule the holder. *)
    if hold_s > 0.0 then Thread.delay hold_s
  in
  let t = S.create ~tracks ~access:res_access in
  let worker w () =
    let rng = Prng.make (Int64.add seed (Int64.of_int w)) in
    for _ = 1 to requests_each do
      let track = Prng.int rng tracks in
      Trace.record trace ~pid:w ~op:"access" ~phase:Trace.Request ~arg:track ();
      S.access t ~pid:w track
    done
  in
  Fun.protect
    ~finally:(fun () -> S.stop t)
    (fun () ->
      Process.run_all ~backend:`Thread
        (List.init workers (fun w -> worker w)));
  (Sync_resources.Disk.travel disk, Sync_resources.Disk.accesses disk)

let verify_stress ?tracks ?workers ?requests_each (module S : Disk_intf.S) =
  match run_stress (module S) ?tracks ?workers ?requests_each ~seed:11L () with
  | _, accesses ->
    let expected =
      Option.value workers ~default:6 * Option.value requests_each ~default:30
    in
    if accesses = expected then Ok ()
    else
      Error
        (Printf.sprintf "lost requests: %d served of %d" accesses expected)
  | exception Sync_resources.Busywork.Ill_synchronized msg ->
    Error ("resource contract violated: " ^ msg)
