module Probe = Sync_trace.Probe

type impl = Sys of Stdlib.Mutex.t | Det of Detrt.mutex

type t = {
  impl : impl;
  (* Watchdog resource id for the Sys half; -1 when the watchdog was off
     at creation. Det mutexes carry their own id inside Detrt. *)
  rid : int;
  name : string;
  (* Timestamp of the last successful acquire by the current holder; 0
     when tracing is off. Written only under the lock, so plain mutable
     is safe. Condition.wait resets it when the waiter re-acquires. *)
  mutable acquired_at : int;
}

let create ?(name = "mutex") () =
  if Detrt.active () then
    { impl = Det (Detrt.mutex ()); rid = -1; name; acquired_at = 0 }
  else
    { impl = Sys (Stdlib.Mutex.create ());
      rid =
        (if Deadlock.enabled () then Deadlock.register ~kind:"mutex" ()
         else -1);
      name;
      acquired_at = 0 }

let lock t =
  let t0 = Probe.now () in
  (match t.impl with
  | Sys m ->
    if t.rid >= 0 && Deadlock.enabled () then begin
      Deadlock.blocked t.rid;
      Stdlib.Mutex.lock m;
      Deadlock.acquired t.rid
    end
    else Stdlib.Mutex.lock m
  | Det m -> Detrt.mutex_lock m);
  if t0 <> 0 then begin
    Probe.span Acquire ~site:t.name ~since:t0 ~arg:0;
    t.acquired_at <- Probe.now ()
  end

let unlock t =
  if t.acquired_at <> 0 then begin
    Probe.span Hold ~site:t.name ~since:t.acquired_at ~arg:0;
    t.acquired_at <- 0
  end;
  match t.impl with
  | Sys m ->
    if t.rid >= 0 && Deadlock.enabled () then Deadlock.released t.rid;
    Stdlib.Mutex.unlock m
  | Det m -> Detrt.mutex_unlock m

let try_lock t =
  let ok =
    match t.impl with
    | Sys m ->
      let ok = Stdlib.Mutex.try_lock m in
      if ok && t.rid >= 0 && Deadlock.enabled () then Deadlock.acquired t.rid;
      ok
    | Det m -> Detrt.mutex_try_lock m
  in
  if ok then t.acquired_at <- Probe.now ();
  ok

let try_lock_for t ~timeout_ns =
  let deadline = Deadline.after_ns timeout_ns in
  let rec loop () =
    if try_lock t then true
    else if Deadline.expired deadline then false
    else begin
      Detrt.relax ();
      loop ()
    end
  in
  loop ()

let protect m f =
  lock m;
  match f () with
  | v ->
    unlock m;
    v
  | exception e ->
    unlock m;
    raise e
