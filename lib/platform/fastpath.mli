(** Opt-in switch for the contention-adaptive fast-path tier (E22).

    The platform primitives ({!Mutex}, {!Semaphore}) consult this flag
    once, at creation time. When the flag is on — and the code is not
    running under {!Detrt} — newly created primitives use the adaptive
    implementations: CAS fast paths, bounded spin-then-park, and
    fetch-and-add semaphore accounting. Primitives created while the
    flag is off keep the stdlib-backed default tier, so the two tiers
    coexist freely in one process and observable semantics (mutual
    exclusion, weak/strong semaphore contracts, Mesa conditions) are
    identical across tiers.

    Inside a {!Detrt} deterministic run the tier is always off:
    adaptive primitives resolve races with real atomic operations,
    which would bypass the recorded scheduler. {!active} encodes that
    guard. *)

val enabled : unit -> bool
(** Current state of the process-wide flag. *)

val enable : unit -> unit
(** Turn the fast-path tier on for subsequently created primitives. *)

val disable : unit -> unit
(** Turn the fast-path tier off for subsequently created primitives. *)

val active : unit -> bool
(** [enabled () && not (Detrt.active ())] — true when a primitive
    created right now would use the fast tier. *)

val with_enabled : (unit -> 'a) -> 'a
(** [with_enabled f] runs [f] with the flag on, restoring the previous
    state on any exit. Used by the workload layer to build fast-tier
    target instances. *)
