(** Domain-scaling sweeps and the E20 baseline.

    A sweep re-runs one mechanism x problem target at increasing worker
    counts (fresh instance per cell, identical seed and windows) so the
    scaling shape — and the point where a mechanism's tail collapses
    under contention — is measured rather than argued. The {!baseline}
    runs the full mechanism-grid sweep behind [BENCH_E20.json], the
    repo's first recorded performance trajectory; future perf PRs are
    judged against it. *)

type cell = { domains : int; report : Report.t }

val default_domain_counts : unit -> int list
(** [1; 2; 4] plus [Domain.recommended_domain_count ()], sorted,
    deduplicated. *)

val run :
  ?params:Target.params -> ?tier:Target.tier -> ?progress:(cell -> unit) ->
  problem:string -> mechanism:string -> base:Loadgen.config ->
  domain_counts:int list -> unit -> (cell list, string) result
(** Run the target once per domain count ([base] with [workers] set to
    the count). [tier] selects the platform substrate (default
    [`Default]); [progress] fires after each cell. *)

val sweep_to_json :
  problem:string -> mechanism:string -> base:Loadgen.config -> cell list ->
  Sync_metrics.Emit.t

(** Specification of a full baseline grid. *)
type baseline_spec = {
  mechanisms : string list;
  problems : string list;
  domain_counts : int list;
  duration_ms : int;
  warmup_ms : int;
  seed : int;
  params : Target.params;
}

val default_baseline_spec : unit -> baseline_spec
(** Six full-coverage mechanisms x {bounded-buffer, readers-writers,
    fcfs} x domain counts [1; 2; 4]; per-cell steady window from
    [SYNC_LOAD_MS] (default 150 ms), closed loop on the domain
    backend. *)

val baseline :
  ?progress:(cell -> unit) -> baseline_spec -> (cell list, string) result
(** Run every cell of the grid in a fixed order (problem-major, then
    mechanism, then domain count). Fails fast on an unknown pair. *)

val baseline_to_json : baseline_spec -> cell list -> Sync_metrics.Emit.t
(** The committed [BENCH_E20.json] document: grid metadata + one row per
    cell with throughput and the latency ladder. *)

val default_e22_spec : unit -> baseline_spec
(** The E20 spec narrowed to domain counts [1; 4] with eventcount added
    to the mechanism list — each cell is run on both substrate tiers,
    so the grid doubles; 1 domain captures the uncontended fast-path
    cost, 4 the contended win. *)

val e22 :
  ?progress:(cell -> unit) -> ?tiers:Target.tier list -> baseline_spec ->
  (cell list, string) result
(** Run the grid once per tier per cell (problem-major, then mechanism,
    then tier, then domain count), identical seed and windows across
    tiers. [tiers] defaults to [[`Default; `Fast]]. Pairs the workload
    engine does not offer (e.g. eventcount readers-writers) are
    skipped; any other per-cell failure aborts the grid. *)

val e22_to_json : baseline_spec -> cell list -> Sync_metrics.Emit.t
(** The committed [BENCH_E22.json] document: like {!baseline_to_json}
    but rows carry a ["tier"] field and the metadata lists both tiers. *)
