(** Low-overhead structured event probes (the E21 observability layer).

    The platform primitives ([Mutex], [Waitq], [Semaphore]) and every
    mechanism library call these entry points at their interesting
    moments: blocking to acquire, holding, parking on a queue, issuing a
    wake, handing a grant directly to a waiter. Each event carries a
    {e site} (a static string naming the instrumented structure), the
    current {e operation} label (stamped per worker by the load engine),
    the recording {e actor} (OS thread, or virtual task inside a
    deterministic run, encoded negative), a start timestamp, a duration
    (spans) and one integer argument whose meaning depends on the kind
    (queue depth, waiters woken, nanoseconds abandoned...).

    Recording is share-nothing: one ring buffer per thread, wraparound
    overwrites the oldest events ({!dropped} counts them). When tracing
    is disabled — the default — every probe is one atomic flag read and
    a branch: no clock read, no allocation. That claim is machine-checked
    (Gc-stat test; A/B bench cell), so keep it true when extending this
    interface: no optional arguments, no closures on the fast path. *)

type kind =
  | Acquire  (** span: blocked entering a lock / region / possession *)
  | Hold  (** span: a lock, monitor or possession was held *)
  | Wait  (** span: parked on a queue or condition; arg = queue depth *)
  | Op  (** span: one mechanism-level operation *)
  | Signal  (** instant: a wake was issued; arg = waiters present *)
  | Handoff  (** instant: grant handed directly to a waiter; arg = waiters left *)
  | Abandon  (** instant: a timed wait gave up; arg = ns spent waiting *)
  | Spurious  (** instant: woken with the awaited predicate still false *)
  | Flip  (** instant: a site changed tier; arg = the new tier's index *)

val kind_to_string : kind -> string

val is_span : kind -> bool

val enabled : unit -> bool
(** One atomic load. Check it before computing anything a probe needs. *)

val enable : unit -> unit

val disable : unit -> unit

val reset : unit -> unit
(** Drop all buffers. Call only while no traced code is running. *)

val set_capacity : int -> unit
(** Ring capacity for buffers created after the call (default 65536).
    @raise Invalid_argument below 2. *)

val now : unit -> int
(** Monotonic nanoseconds as an int, or 0 when tracing is disabled —
    the span start token: [span] ignores calls with [since = 0], so
    [let t0 = now () in ... ; span K ~site ~since:t0 ~arg] is correct in
    both worlds and free in the disabled one. *)

val span : kind -> site:string -> since:int -> arg:int -> unit
(** Record a span that started at [since] (from {!now}) and ends now.
    No-op when disabled or [since = 0]. *)

val instant : kind -> site:string -> arg:int -> unit

val set_op : string -> unit
(** Stamp the calling thread's subsequent events with an operation
    label (the load engine calls this before each driven op). *)

val set_task_provider : (unit -> int option) -> unit
(** Actor ids inside deterministic runs (wired up by [Detrt], like the
    fault and deadlock providers). *)

(** {1 Snapshots} *)

type event = {
  t0 : int;
  dur : int;
  kind : kind;
  site : string;
  op : string;
  actor : int;  (** OS thread id, or [-(task id + 1)] for virtual tasks *)
  arg : int;
}

val snapshot : unit -> event list
(** Every retained event across all buffers, sorted by start time. Take
    it after the traced region has quiesced. *)

val live_snapshot : unit -> event list
(** Like {!snapshot} but safe while recording threads keep writing (the
    adaptive sampler's read path). Each ring is read under a seqlock on
    its atomic position counter: the slot arrays are copied, and only
    events fully published before the copy began and not overwritten
    during it are returned — never a torn slot. Events recorded during
    the copy are simply missed until the next sample. *)

type cursor
(** Consumption frontier over the per-thread rings, for incremental
    live reads. *)

val start_cursor : cursor
(** The frontier that has consumed nothing. *)

val live_read : cursor -> event list * cursor
(** Events recorded past the cursor (sorted by start time) and the
    advanced cursor. Same seqlock guarantees as {!live_snapshot}, but
    the work done is proportional to the {e new} events, not to ring
    capacity — the periodic-sampler read path. Events overwritten
    before being consumed are lost, exactly as in {!live_snapshot}. *)

val total : unit -> int
(** Events ever recorded since the last {!reset} (including dropped). *)

val dropped : unit -> int
(** Events lost to ring wraparound. *)

val with_tracing : (unit -> 'a) -> 'a * event list
(** [reset]; [enable]; run; [disable]; [snapshot]. The flag is cleared
    (but the buffers kept) if the thunk raises. *)

val actor_label : int -> string
(** ["t12"] for OS threads, ["v3"] for virtual tasks. *)
