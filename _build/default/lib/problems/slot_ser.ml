(** One-slot buffer with a serializer: one queue per request type (a put
    parked ahead of a get must not block it — only the head of a queue is
    eligible, so the two types need separate queues), guards over the
    [full] flag, and a single-member crowd serializing the cell access. *)

open Sync_serializer
open Sync_taxonomy

type t = {
  ser : Serializer.t;
  putq : Serializer.Queue.t;
  getq : Serializer.Queue.t;
  users : Serializer.Crowd.t;
  mutable full : bool;
  res_put : pid:int -> int -> unit;
  res_get : pid:int -> int;
}

let mechanism = "serializer"

let create ~put ~get =
  let ser = Serializer.create () in
  { ser;
    putq = Serializer.Queue.create ~name:"putq" ser;
    getq = Serializer.Queue.create ~name:"getq" ser;
    users = Serializer.Crowd.create ~name:"users" ser; full = false;
    res_put = put; res_get = get }

let put t ~pid v =
  Serializer.with_serializer t.ser (fun () ->
      Serializer.enqueue t.putq ~until:(fun () ->
          Serializer.Crowd.is_empty t.users && not t.full);
      Serializer.join_crowd t.users ~body:(fun () -> t.res_put ~pid v);
      t.full <- true)

let get t ~pid =
  Serializer.with_serializer t.ser (fun () ->
      Serializer.enqueue t.getq ~until:(fun () ->
          Serializer.Crowd.is_empty t.users && t.full);
      let v = Serializer.join_crowd t.users ~body:(fun () -> t.res_get ~pid) in
      t.full <- false;
      v)

let stop _ = ()

let meta =
  Meta.make ~mechanism ~problem:"one-slot-buffer"
    ~fragments:
      [ ("slot-alternation", [ "until"; "full"; "not full" ]);
        ("slot-access-exclusion", [ "empty(users)"; "join_crowd" ]) ]
    ~info_access:
      [ (Info.History, Meta.Indirect); (Info.Sync_state, Meta.Direct) ]
    ~aux_state:[ "full flag records whether put happened last" ]
    ~separation:Meta.Enforced ()
