(** Dijkstra semaphores, built from scratch on mutex + selective wakeup.

    Two flavours are provided:

    - {!Counting}: a general counting semaphore with a choice of fairness.
      [`Strong] (the default) grants [P] strictly in arrival order — the
      "blocked-queue" semantics Dijkstra's later work and most textbook
      solutions assume. [`Weak] wakes an arbitrary waiter, which is enough
      for mutual exclusion but admits starvation; the evaluation harness
      uses it to show which classic solutions silently depend on strong
      semantics.
    - {!Binary}: a binary semaphore (value 0 or 1); [V] on an open binary
      semaphore is a programming error and raises.

    These are the substrate for the Campbell-Habermann path-expression
    translation and for the baseline semaphore solutions of the six
    canonical problems.

    When {!Fastpath} is active at creation time, a [`Weak] counting
    semaphore uses the contention-adaptive tier (E22): the value lives
    in a non-negative atomic, [P] consumes a unit by CAS when the value
    is positive, [V] publishes with one fetch-and-add, and the internal
    lock is touched only when the value exhausts and a waiter parks.
    [`Strong] (FCFS) mode always keeps the queued slow path — a CAS
    fast path is a barging path, and arrival-order grants must not
    change — but still inherits the adaptive mutex for its lock. *)

type fairness = [ `Strong | `Weak ]

module Counting : sig
  type t

  val create : ?fairness:fairness -> int -> t
  (** [create n] has initial value [n >= 0]. *)

  val p : t -> unit
  (** Dijkstra's P (wait/down): decrement, blocking while the value is 0.

      Exception-safe: an abort injected while parked (see {!Fault}, sites
      ["semaphore.pre-wait"] / ["waitq.pre-wait"] / ["waitq.post-wakeup"])
      never leaks a unit of value — a grant consumed by an aborting waiter
      is re-routed to the next waiter or returned to the counter. *)

  val acquire_for : t -> timeout_ns:int64 -> bool
  (** Timed P with a monotonic deadline: [true] iff the semaphore was
      acquired before [timeout_ns] elapsed; on timeout the caller is
      removed from the wait queue and the value is untouched.
      Deterministic under {!Detrt} (the timeout becomes a poll budget,
      see {!Deadline}). *)

  val v : t -> unit
  (** Dijkstra's V (signal/up): increment, waking one waiter if any. *)

  val v_n : t -> int -> unit
  (** [v_n s n] releases [n] units as one batched V: one lock
      acquisition and one wake pass instead of [n] round-trips.
      Strong mode hands the units to the [n] oldest waiters in a
      single {!Waitq.wake_n} sweep (remaining units go to the
      counter); weak mode adds [n] and broadcasts once. Equivalent to
      [n] calls of {!v} up to wake order. [n = 0] is a no-op.
      @raise Invalid_argument if [n < 0]. *)

  val try_p : t -> bool
  (** Non-blocking P; [true] on success. *)

  val value : t -> int
  (** Current value (racy; for tests and introspection). *)

  val waiters : t -> int
  (** Number of blocked processes (racy; for tests). *)
end

module Binary : sig
  type t

  val create : bool -> t
  (** [create true] is open (value 1); [create false] is closed. *)

  val p : t -> unit

  val acquire_for : t -> timeout_ns:int64 -> bool
  (** Timed P; see {!Counting.acquire_for}. *)

  val v : t -> unit
  (** @raise Invalid_argument if the semaphore is already open. *)

  val value : t -> int
end
