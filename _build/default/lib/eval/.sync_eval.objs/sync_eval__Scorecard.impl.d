lib/eval/scorecard.ml: Conformance Expressiveness Format Independence List Modularity Registry Sync_taxonomy
