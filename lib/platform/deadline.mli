(** Monotonic deadlines for the timed blocking operations
    ([Mutex.try_lock_for], [Condition.wait_for], [Semaphore.acquire_for],
    [Waitq.wait_for]).

    Outside a deterministic run a deadline is an absolute monotonic
    timestamp. Inside a {!Detrt} run wall-clock time does not exist, so a
    deadline degrades to a {e poll budget}: each {!expired} check spends
    one unit, and the deadline fires when the budget is gone. Since the
    timed waits check once per polling step — and every polling step is a
    recorded scheduling point — timeout behaviour is a pure function of
    the schedule and replays deterministically. *)

type t

val after_ns : int64 -> t
(** Deadline [ns] nanoseconds from now (det runs: a poll budget of about
    one unit per 50µs, clamped to [2, 100_000]). A non-positive [ns] is
    expired from the start — in both worlds the timed waits then reject
    without a syscall-level park (det runs: poll budget 0). *)

val after_s : float -> t
(** Same, in seconds. *)

val never : t
(** Never expires. *)

val expired : t -> bool
(** Has the deadline passed? Each call on a det-run deadline consumes one
    unit of the poll budget. *)
