lib/problems/disk_harness.ml: Disk_intf Fun Int64 Ivl Latch List Option Printf Prng Process String Sync_platform Sync_resources Testwait Thread Trace
