(** The record of one load-generation run: what was driven (problem,
    variant, mechanism), how (workers, backend, loop mode, rates,
    windows, seed), and what was measured (a {!Sync_metrics.Summary.t}
    over the steady-state window). Everything downstream — the CLI's
    human table, [--json] artifacts, the E20 baseline, the scorecard's
    performance axis — is a view of this record. *)

type t = {
  problem : string;
  variant : string;
  mechanism : string;
  tier : string;  (** platform substrate: ["default"] or ["fast"] (E22) *)
  workers : int;
  backend : string;  (** ["thread"] or ["domain"] *)
  mode : string;  (** ["closed"] or ["open"] *)
  rate_per_s : float option;  (** open loop: total offered rate *)
  arrival : string option;  (** open loop: ["poisson"] or ["uniform"] *)
  duration_ms : int;  (** steady-state window *)
  warmup_ms : int;
  seed : int;
  summary : Sync_metrics.Summary.t;
}

val pp : Format.formatter -> t -> unit

val to_json : t -> Sync_metrics.Emit.t

val write_json : string -> t -> unit
(** Write one run's JSON document to a file. *)

val csv_header : string

val csv_rows : t -> string list
(** One CSV record per op, labelled with mechanism/problem/variant/
    workers/backend/mode. *)
