(** Disk-head scheduling in message-passing style: the scheduler process
    reads the track straight out of the request message — parameters are
    first-class for a message-passing mechanism. Pending requests are
    held in heaps inside the server; grants are issued in SCAN order when
    the disk falls idle. *)

open Sync_csp
open Sync_platform
open Sync_taxonomy

type direction = Up | Down

type pending = { dest : int; grant : unit Csp.Channel.t }

type t = {
  net : Csp.network;
  req : pending Csp.Channel.t;
  done_ch : unit Csp.Channel.t;
  stop_ch : unit Csp.Channel.t;
  server : Process.t;
  res_access : pid:int -> int -> unit;
}

let mechanism = "csp"

let create ~tracks ~access =
  ignore tracks;
  let net = Csp.network () in
  let req = Csp.Channel.create ~name:"disk-req" net in
  let done_ch = Csp.Channel.create ~name:"disk-done" net in
  let stop_ch = Csp.Channel.create ~name:"disk-stop" net in
  let server =
    Process.spawn ~backend:`Thread (fun () ->
      (* A dead scheduler must not strand parked clients: poison on
         abort. *)
      try
        let upq = Heap.create ~cmp:(fun a b -> compare a.dest b.dest) () in
        let downq = Heap.create ~cmp:(fun a b -> compare b.dest a.dest) () in
        let headpos = ref 0 in
        let direction = ref Up in
        let busy = ref false in
        let running = ref true in
        let enqueue p =
          if !headpos < p.dest || (!headpos = p.dest && !direction = Up) then
            Heap.push upq p
          else Heap.push downq p
        in
        let dispatch () =
          let next =
            match !direction with
            | Up -> (
              match Heap.pop upq with
              | Some w -> Some w
              | None ->
                direction := Down;
                Heap.pop downq)
            | Down -> (
              match Heap.pop downq with
              | Some w -> Some w
              | None ->
                direction := Up;
                Heap.pop upq)
          in
          match next with
          | Some w ->
            headpos := w.dest;
            busy := true;
            Csp.send w.grant ()
          | None -> busy := false
        in
        while !running || !busy do
          match
            Csp.select
              [ Csp.recv_case done_ch (fun () -> `Done);
                Csp.recv_case req (fun p -> `Req p);
                Csp.guard !running (Csp.recv_case stop_ch (fun () -> `Stop)) ]
          with
          | `Req p ->
            if !busy then enqueue p
            else begin
              headpos := p.dest;
              busy := true;
              Csp.send p.grant ()
            end
          | `Done -> dispatch ()
          | `Stop -> running := false
        done
      with e ->
        Csp.poison net e;
        raise e)
  in
  { net; req; done_ch; stop_ch; server; res_access = access }

let access t ~pid track =
  let grant = Csp.Channel.create ~name:"disk-grant" t.net in
  Csp.send t.req { dest = track; grant };
  Csp.recv grant;
  Fun.protect
    ~finally:(fun () -> Csp.send t.done_ch ())
    (fun () -> t.res_access ~pid track)

let stop t =
  Csp.send t.stop_ch ();
  Process.join t.server

let meta =
  Meta.make ~mechanism ~problem:"disk-scheduler"
    ~fragments:
      [ ("disk-exclusion", [ "busy"; "flag"; "grant"; "rendezvous" ]);
        ("disk-scan-order",
         [ "heaps"; "dispatch-on-done"; "track"; "in"; "message" ]) ]
    ~info_access:
      [ (Info.Parameters, Meta.Direct); (Info.Sync_state, Meta.Indirect) ]
    ~aux_state:
      [ "pending-request heaps"; "headpos"; "direction"; "busy flag" ]
    ~separation:Meta.Enforced ()
