lib/problems/fcfs_ccr.ml: Fun Info Meta Sync_ccr Sync_taxonomy
