lib/resources/busywork.mli:
