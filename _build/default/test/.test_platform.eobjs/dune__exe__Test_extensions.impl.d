test/test_extensions.ml: Alcotest Atomic Eventcount Fun List Sync_ccr Sync_platform Testutil Thread Tsqueue
