type t = {
  sub_bits : int;
  sub : int;  (* 1 lsl sub_bits: linear region size / sub-buckets per power *)
  counts : int array;
  mutable total : int;
  mutable min_v : int;
  mutable max_v : int;
  mutable sum : float;
}

(* Bucket layout: indices [0, sub) are exact values; above that, each
   power-of-two range [2^h, 2^(h+1)) with h >= sub_bits is split into
   [sub] linear sub-buckets of width 2^(h - sub_bits). The highest
   representable value is max_int (h = 61 on 64-bit OCaml), so the array
   size is sub * (63 - sub_bits) buckets — ~1.9k ints at sub_bits = 5. *)
let size ~sub_bits ~sub = sub * (63 - sub_bits)

let create ?(sub_bits = 5) () =
  if sub_bits < 1 || sub_bits > 10 then
    invalid_arg "Histogram.create: sub_bits must be in 1..10";
  let sub = 1 lsl sub_bits in
  { sub_bits; sub; counts = Array.make (size ~sub_bits ~sub) 0; total = 0;
    min_v = max_int; max_v = 0; sum = 0.0 }

let msb v =
  let v = ref v and r = ref 0 in
  if !v lsr 32 <> 0 then begin r := !r + 32; v := !v lsr 32 end;
  if !v lsr 16 <> 0 then begin r := !r + 16; v := !v lsr 16 end;
  if !v lsr 8 <> 0 then begin r := !r + 8; v := !v lsr 8 end;
  if !v lsr 4 <> 0 then begin r := !r + 4; v := !v lsr 4 end;
  if !v lsr 2 <> 0 then begin r := !r + 2; v := !v lsr 2 end;
  if !v lsr 1 <> 0 then incr r;
  !r

let index t v =
  if v < t.sub then v
  else
    let e = msb v - t.sub_bits in
    t.sub + (e * t.sub) + ((v lsr e) - t.sub)

(* Inclusive value range of bucket [i]. *)
let bounds t i =
  if i < t.sub then (i, i)
  else
    let e = (i - t.sub) / t.sub and m = (i - t.sub) mod t.sub in
    let lo = (t.sub + m) lsl e in
    (lo, lo + (1 lsl e) - 1)

let record_n t v n =
  if n < 0 then invalid_arg "Histogram.record_n: negative multiplicity";
  if n > 0 then begin
    let v = if v < 0 then 0 else v in
    let i = index t v in
    t.counts.(i) <- t.counts.(i) + n;
    t.total <- t.total + n;
    if v < t.min_v then t.min_v <- v;
    if v > t.max_v then t.max_v <- v;
    t.sum <- t.sum +. (float_of_int v *. float_of_int n)
  end

let record t v = record_n t v 1

let count t = t.total

let min_value t = if t.total = 0 then 0 else t.min_v

let max_value t = t.max_v

let mean t = if t.total = 0 then 0.0 else t.sum /. float_of_int t.total

let quantile t q =
  if t.total = 0 then 0
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let rank =
      (* ceil(q * total), clamped into [1, total] *)
      let r = int_of_float (Float.ceil (q *. float_of_int t.total)) in
      max 1 (min t.total r)
    in
    let i = ref 0 and seen = ref 0 in
    while !seen < rank do
      seen := !seen + t.counts.(!i);
      incr i
    done;
    let _, hi = bounds t (!i - 1) in
    max t.min_v (min t.max_v hi)
  end

let merge_into ~into src =
  if into.sub_bits <> src.sub_bits then
    invalid_arg "Histogram.merge_into: precision mismatch";
  Array.iteri
    (fun i n -> if n > 0 then into.counts.(i) <- into.counts.(i) + n)
    src.counts;
  into.total <- into.total + src.total;
  if src.total > 0 then begin
    if src.min_v < into.min_v then into.min_v <- src.min_v;
    if src.max_v > into.max_v then into.max_v <- src.max_v;
    into.sum <- into.sum +. src.sum
  end

let copy t =
  { t with counts = Array.copy t.counts }

let merge a b =
  let t = copy a in
  merge_into ~into:t b;
  t

let nonempty_buckets t =
  let acc = ref [] in
  for i = Array.length t.counts - 1 downto 0 do
    if t.counts.(i) > 0 then begin
      let lo, hi = bounds t i in
      acc := (lo, hi, t.counts.(i)) :: !acc
    end
  done;
  !acc
