test/test_serializer.mli:
