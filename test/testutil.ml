(* Shared helpers for the concurrency test suites. *)

open Sync_platform

let ns_of_s s = Int64.of_float (s *. 1e9)

(* Poll [f] until it returns true; fail the test after [timeout] seconds. *)
let eventually ?(timeout = 5.0) msg f =
  let deadline = Int64.add (Clock.now_ns ()) (ns_of_s timeout) in
  let rec loop () =
    if f () then ()
    else if Clock.now_ns () >= deadline then
      Alcotest.failf "timed out waiting for: %s" msg
    else begin
      Thread.yield ();
      loop ()
    end
  in
  loop ()

(* Check that [f] stays false for [for_] seconds (a bounded "never"). *)
let never ?(for_ = 0.15) msg f =
  let deadline = Int64.add (Clock.now_ns ()) (ns_of_s for_) in
  let rec loop () =
    if f () then Alcotest.failf "unexpectedly became true: %s" msg
    else if Clock.now_ns () < deadline then begin
      Thread.yield ();
      loop ()
    end
  in
  loop ()

(* A mutex-protected event journal for ordering assertions. *)
module Journal = struct
  type t = { lock : Mutex.t; mutable entries : string list }

  let create () = { lock = Mutex.create (); entries = [] }

  let add t e =
    Mutex.lock t.lock;
    t.entries <- e :: t.entries;
    Mutex.unlock t.lock

  let entries t =
    Mutex.lock t.lock;
    let es = List.rev t.entries in
    Mutex.unlock t.lock;
    es
end

(* Deterministic property runs: the qcheck suites derive their random
   state from one pinned seed, so a failure seen in CI reproduces
   locally. QCHECK_SEED=<int> overrides the pin (e.g. for soak runs);
   every property failure prints the seed that replays it. *)
let qcheck_seed =
  match Sys.getenv_opt "QCHECK_SEED" with
  | Some s -> (try int_of_string (String.trim s) with _ -> 0xB100F)
  | None -> 0xB100F

let qcheck_case test =
  let name, speed, run =
    QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| qcheck_seed |]) test
  in
  let run' () =
    try run ()
    with e ->
      Printf.printf
        "  property failed under QCHECK_SEED=%d (set this env var to replay)\n\
         %!"
        qcheck_seed;
      raise e
  in
  (name, speed, run')

(* Spawn each thunk as a thread-backed process and join them all. *)
let run_all fs = Process.run_all ~backend:`Thread fs

let spawn f = Process.spawn ~backend:`Thread f

(* Max number of simultaneously-active bodies, for concurrency assertions. *)
module Gauge = struct
  type t = { current : int Atomic.t; max : int Atomic.t }

  let create () = { current = Atomic.make 0; max = Atomic.make 0 }

  let enter t =
    let c = 1 + Atomic.fetch_and_add t.current 1 in
    let rec bump () =
      let m = Atomic.get t.max in
      if c > m && not (Atomic.compare_and_set t.max m c) then bump ()
    in
    bump ()

  let leave t = ignore (Atomic.fetch_and_add t.current (-1))

  let max t = Atomic.get t.max

  let current t = Atomic.get t.current
end
