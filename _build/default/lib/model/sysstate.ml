type sem = { value : int; queue : string list; granted : string list }

type mon = {
  owner : string option;
  entry : string list;
  urgent : string list;
  conds : (string * string list) list;
  mgranted : string list;
}

type ser = {
  possessed : bool;
  sgranted : string list;
  sentry : string list;
  queues : (string * (string * int) list) list;
  crowds : (string * int) list;
  next_seq : int;
}

type t = {
  sems : (string * sem) list;
  mons : (string * mon) list;
  sers : (string * ser) list;
  ints : (string * int) list;
  log : string list;
}

let init ?(sems = []) ?(mons = []) ?(conds = []) ?(sers = []) ?(ints = []) () =
  { sems =
      List.map (fun (n, v) -> (n, { value = v; queue = []; granted = [] })) sems;
    mons =
      List.map
        (fun n ->
          let cs = try List.assoc n conds with Not_found -> [] in
          ( n,
            { owner = None; entry = []; urgent = [];
              conds = List.map (fun c -> (c, [])) cs; mgranted = [] } ))
        mons;
    sers =
      List.map
        (fun (n, qs, cs) ->
          ( n,
            { possessed = false; sgranted = []; sentry = [];
              queues = List.map (fun q -> (q, [])) qs;
              crowds = List.map (fun c -> (c, 0)) cs; next_seq = 0 } ))
        sers;
    ints; log = [] }

let sem t name = List.assoc name t.sems

let mon t name = List.assoc name t.mons

let ser t name = List.assoc name t.sers

let int_of t name = List.assoc name t.ints

(* Keep assoc lists sorted so structurally-equal states stay equal after
   updates (the explorer memoizes on structural equality). *)
let update assoc name v =
  List.sort compare ((name, v) :: List.remove_assoc name assoc)

let set_sem t name s = { t with sems = update t.sems name s }

let set_mon t name m = { t with mons = update t.mons name m }

let set_ser t name s = { t with sers = update t.sers name s }

let set_int t name v = { t with ints = update t.ints name v }

let logged t = List.rev t.log

let log_event t e = { t with log = e :: t.log }

type action = { label : string; guard : t -> bool; apply : t -> t }

let act label ?(guard = fun _ -> true) apply = { label; guard; apply }

let remove x = List.filter (fun y -> y <> x)

module Sem = struct
  let request name ~me =
    act (me ^ ":request(" ^ name ^ ")") (fun t ->
        let s = sem t name in
        if s.value > 0 && s.queue = [] then
          set_sem t name
            { s with value = s.value - 1; granted = me :: s.granted }
        else set_sem t name { s with queue = s.queue @ [ me ] })

  let acquire name ~me =
    act
      (me ^ ":acquire(" ^ name ^ ")")
      ~guard:(fun t -> List.mem me (sem t name).granted)
      (fun t ->
        let s = sem t name in
        set_sem t name { s with granted = remove me s.granted })

  let p name ~me = [ request name ~me; acquire name ~me ]

  let v name =
    act ("V(" ^ name ^ ")") (fun t ->
        let s = sem t name in
        match s.queue with
        | h :: rest ->
          set_sem t name { s with queue = rest; granted = h :: s.granted }
        | [] -> set_sem t name { s with value = s.value + 1 })

  let available t name =
    let s = sem t name in
    s.value > 0 && s.queue = []

  let take t name =
    let s = sem t name in
    set_sem t name { s with value = s.value - 1 }
end

module Mon = struct
  let grant m who = { m with owner = Some who; mgranted = who :: m.mgranted }

  (* Release the monitor: urgent beats entry, per Hoare'74. *)
  let release m =
    match m.urgent with
    | h :: rest -> grant { m with urgent = rest } h
    | [] -> (
      match m.entry with
      | h :: rest -> grant { m with entry = rest } h
      | [] -> { m with owner = None })

  let enter name ~me =
    [ act
        (me ^ ":enter(" ^ name ^ ")")
        (fun t ->
          let m = mon t name in
          if m.owner = None then set_mon t name (grant m me)
          else set_mon t name { m with entry = m.entry @ [ me ] });
      act
        (me ^ ":entered(" ^ name ^ ")")
        ~guard:(fun t -> List.mem me (mon t name).mgranted)
        (fun t ->
          let m = mon t name in
          set_mon t name { m with mgranted = remove me m.mgranted }) ]

  let exit name ~me =
    act
      (me ^ ":exit(" ^ name ^ ")")
      ~guard:(fun t -> (mon t name).owner = Some me)
      (fun t -> set_mon t name (release (mon t name)))

  let wait name ~cond ~me =
    [ act
        (me ^ ":wait(" ^ cond ^ ")")
        ~guard:(fun t -> (mon t name).owner = Some me)
        (fun t ->
          let m = mon t name in
          let waiting = List.assoc cond m.conds @ [ me ] in
          let m = { m with conds = update m.conds cond waiting } in
          set_mon t name (release m));
      act
        (me ^ ":resumed(" ^ cond ^ ")")
        ~guard:(fun t -> List.mem me (mon t name).mgranted)
        (fun t ->
          let m = mon t name in
          set_mon t name { m with mgranted = remove me m.mgranted }) ]

  let signal name ~cond ~me =
    [ act
        (me ^ ":signal(" ^ cond ^ ")")
        ~guard:(fun t -> (mon t name).owner = Some me)
        (fun t ->
          let m = mon t name in
          match List.assoc cond m.conds with
          | [] -> t (* no-op; signaller keeps the monitor *)
          | w :: rest ->
            let m = { m with conds = update m.conds cond rest } in
            let m = { m with urgent = m.urgent @ [ me ] } in
            set_mon t name (grant m w));
      act
        (me ^ ":signalled(" ^ cond ^ ")")
        ~guard:(fun t ->
          let m = mon t name in
          (* Either the signal was a no-op (we still own the monitor and
             are not parked on urgent), or we were handed it back. *)
          (m.owner = Some me && not (List.mem me m.urgent))
          || List.mem me m.mgranted)
        (fun t ->
          let m = mon t name in
          set_mon t name { m with mgranted = remove me m.mgranted }) ]

  let signal_one m cond me =
    match List.assoc cond m.conds with
    | [] -> m
    | w :: rest ->
      let m = { m with conds = update m.conds cond rest } in
      let m = { m with urgent = m.urgent @ [ me ] } in
      grant m w

  let signal_priority name ~first ~otherwise ~me =
    [ act
        (me ^ ":signal-priority(" ^ first ^ "|" ^ otherwise ^ ")")
        ~guard:(fun t -> (mon t name).owner = Some me)
        (fun t ->
          let m = mon t name in
          let cond =
            if List.assoc first m.conds <> [] then first else otherwise
          in
          set_mon t name (signal_one m cond me));
      act
        (me ^ ":signal-priority-resumed")
        ~guard:(fun t ->
          let m = mon t name in
          (m.owner = Some me && not (List.mem me m.urgent))
          || List.mem me m.mgranted)
        (fun t ->
          let m = mon t name in
          set_mon t name { m with mgranted = remove me m.mgranted }) ]

  let queue_nonempty t name ~cond = List.assoc cond (mon t name).conds <> []

  let waiting_on t name ~cond who = List.mem who (List.assoc cond (mon t name).conds)
end

module Ser = struct
  type guards = (string * (t -> bool)) list

  (* Must be applied at every possession-release point: pick, among the
     heads of the event queues whose guard holds, the longest waiting
     (smallest arrival seq); otherwise the oldest entry waiter; otherwise
     the serializer becomes free. *)
  let release_possession name ~guards t =
    let s = ser t name in
    let eligible =
      List.filter_map
        (fun (qname, waiters) ->
          match waiters with
          | (who, seq) :: _ ->
            let guard = List.assoc qname guards in
            if guard t then Some (qname, who, seq) else None
          | [] -> None)
        s.queues
    in
    let best =
      List.fold_left
        (fun best (qname, who, seq) ->
          match best with
          | Some (_, _, bseq) when bseq <= seq -> best
          | _ -> Some (qname, who, seq))
        None eligible
    in
    match best with
    | Some (qname, who, _) ->
      let waiters = List.tl (List.assoc qname s.queues) in
      set_ser t name
        { s with queues = update s.queues qname waiters;
          sgranted = who :: s.sgranted }
    | None -> (
      match s.sentry with
      | h :: rest ->
        set_ser t name { s with sentry = rest; sgranted = h :: s.sgranted }
      | [] -> set_ser t name { s with possessed = false })

  let acquire name ~me =
    [ act
        (me ^ ":ser-acquire(" ^ name ^ ")")
        (fun t ->
          let s = ser t name in
          if not s.possessed then
            set_ser t name { s with possessed = true; sgranted = me :: s.sgranted }
          else set_ser t name { s with sentry = s.sentry @ [ me ] });
      act
        (me ^ ":ser-possess(" ^ name ^ ")")
        ~guard:(fun t -> List.mem me (ser t name).sgranted)
        (fun t ->
          let s = ser t name in
          set_ser t name { s with sgranted = remove me s.sgranted }) ]

  let release name ~guards ~me =
    act (me ^ ":ser-release(" ^ name ^ ")") (release_possession name ~guards)

  let enqueue name ~q ~me ~guards =
    [ act
        (me ^ ":enqueue(" ^ q ^ ")")
        (fun t ->
          let s = ser t name in
          let waiters = List.assoc q s.queues @ [ (me, s.next_seq) ] in
          let t =
            set_ser t name
              { s with queues = update s.queues q waiters;
                next_seq = s.next_seq + 1 }
          in
          release_possession name ~guards t);
      act
        (me ^ ":dequeued(" ^ q ^ ")")
        ~guard:(fun t -> List.mem me (ser t name).sgranted)
        (fun t ->
          let s = ser t name in
          set_ser t name { s with sgranted = remove me s.sgranted }) ]

  let join_crowd name ~crowd ~me ~guards =
    act
      (me ^ ":join(" ^ crowd ^ ")")
      (fun t ->
        let s = ser t name in
        let n = List.assoc crowd s.crowds in
        let t = set_ser t name { s with crowds = update s.crowds crowd (n + 1) } in
        release_possession name ~guards t)

  let leave_crowd name ~crowd ~me =
    acquire name ~me
    @ [ act
          (me ^ ":leave(" ^ crowd ^ ")")
          (fun t ->
            let s = ser t name in
            let n = List.assoc crowd s.crowds in
            set_ser t name { s with crowds = update s.crowds crowd (n - 1) }) ]

  let waiting_in t name ~q who =
    List.exists (fun (w, _) -> w = who) (List.assoc q (ser t name).queues)
end
