examples/readers_writers.mli:
