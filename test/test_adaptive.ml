(* E27 self-tuning layer, piece by piece: the hierarchical timer
   wheel's exactness/cancel/cascade/overflow contracts and its
   tick-cost independence at a million pending alarms; the hot-swap
   mutex indirection under a real-thread flip storm (conservation is
   the exclusion witness); and the feedback controller — the pure
   decision core directly, and the hysteresis / probation-revert / ban
   / spin-steering machinery driven one deterministic window at a time
   through [sample_once] with forged probe spans. *)

module W = Sync_platform.Timerwheel
module Mutex = Sync_platform.Mutex
module Backoff = Sync_prims.Backoff
module Queuelock = Sync_prims.Queuelock
module Probe = Sync_trace.Probe
module Controller = Sync_adaptive.Controller

(* ---------------------------------------------------------------- *)
(* Timer wheel                                                      *)
(* ---------------------------------------------------------------- *)

(* Add every delay from the wheel's current time, then tick to the
   last deadline asserting each alarm fires exactly at its own — the
   cascade must never be early or late, whatever level the delay lands
   on and however misaligned [now] is when it is scheduled. *)
let drain_exact w delays =
  let base = W.now w in
  let expected = Hashtbl.create 64 in
  List.iteri
    (fun i d ->
      let a = W.add w ~delay:d i in
      Alcotest.(check int) "deadline = now + delay" (base + d) (W.deadline a);
      Hashtbl.replace expected (base + d)
        (i
        :: Option.value ~default:[] (Hashtbl.find_opt expected (base + d))))
    delays;
  Alcotest.(check int) "all pending" (List.length delays) (W.pending w);
  let total = ref 0 in
  let horizon = List.fold_left (fun acc d -> max acc d) 1 delays in
  for t = base + 1 to base + horizon do
    let here = ref [] in
    let n =
      W.tick w (fun dl v ->
          Alcotest.(check int) "fires exactly at its deadline" t dl;
          here := v :: !here)
    in
    total := !total + n;
    let want =
      List.sort compare (Option.value ~default:[] (Hashtbl.find_opt expected t))
    in
    Alcotest.(check (list int))
      (Printf.sprintf "tick %d fires its bucket" t)
      want
      (List.sort compare !here)
  done;
  Alcotest.(check int) "every alarm fired" (List.length delays) !total;
  Alcotest.(check int) "drained" 0 (W.pending w)

let boundary_delays =
  (* level boundaries for a 3-level 4-bit wheel: slots span 1, 16 and
     256 ticks, horizon 4096 *)
  [ 1; 2; 15; 16; 17; 255; 256; 257; 4095; 4096 ]

let test_wheel_exact () =
  let w = W.create ~levels:3 ~slot_bits:4 () in
  let rng = Random.State.make [| 0xE27 |] in
  drain_exact w
    (boundary_delays @ List.init 200 (fun _ -> 1 + Random.State.int rng 4095));
  (* repeat from a deliberately misaligned now: cascades now start
     mid-slot at every level *)
  let skew = 37 in
  let n = W.advance w ~ticks:skew (fun _ _ -> ()) in
  Alcotest.(check int) "empty advance fires nothing" 0 n;
  drain_exact w boundary_delays

let test_wheel_clamp () =
  let w = W.create () in
  let a = W.add w ~delay:0 7 in
  Alcotest.(check int) "delay 0 clamps to the next tick" 1 (W.deadline a);
  let fired = ref [] in
  ignore (W.tick w (fun _ v -> fired := v :: !fired));
  Alcotest.(check (list int)) "fires on the very next tick" [ 7 ] !fired

let test_wheel_fifo () =
  let w = W.create () in
  List.iter (fun i -> ignore (W.add w ~delay:5 i)) [ 1; 2; 3; 4; 5 ];
  let order = ref [] in
  let n = W.advance w ~ticks:5 (fun _ v -> order := v :: !order) in
  Alcotest.(check int) "all fired" 5 n;
  Alcotest.(check (list int)) "bucket is FIFO" [ 1; 2; 3; 4; 5 ]
    (List.rev !order)

let test_wheel_cancel () =
  let w = W.create () in
  let a = W.add w ~delay:3 1 in
  let b = W.add w ~delay:3 2 in
  Alcotest.(check int) "two pending" 2 (W.pending w);
  Alcotest.(check bool) "cancel unlinks" true (W.cancel w a);
  Alcotest.(check bool) "cancel is idempotent" false (W.cancel w a);
  Alcotest.(check bool) "cancelled reads as fired" true (W.fired a);
  Alcotest.(check int) "pending drops" 1 (W.pending w);
  let fired = ref [] in
  ignore (W.advance w ~ticks:3 (fun _ v -> fired := v :: !fired));
  Alcotest.(check (list int)) "only the survivor fires" [ 2 ] !fired;
  Alcotest.(check bool) "cancel after firing" false (W.cancel w b);
  Alcotest.(check int) "drained" 0 (W.pending w)

let test_wheel_overflow () =
  (* horizon 16: these delays sit on the overflow list across several
     full rotations before cascading in *)
  let w = W.create ~levels:2 ~slot_bits:2 () in
  let a = W.add w ~delay:40 1 in
  Alcotest.(check int) "deadline beyond the horizon" 40 (W.deadline a);
  let n = W.advance w ~ticks:39 (fun _ _ -> ()) in
  Alcotest.(check int) "silent until due" 0 n;
  Alcotest.(check int) "still pending" 1 (W.pending w);
  let fired = ref 0 in
  ignore
    (W.tick w (fun dl _ ->
         Alcotest.(check int) "fires on the dot" 40 dl;
         incr fired));
  Alcotest.(check int) "fired exactly once" 1 !fired;
  (* overflow alarms cancel like any other *)
  let b = W.add w ~delay:50 2 in
  Alcotest.(check bool) "overflow cancel" true (W.cancel w b);
  let n = W.advance w ~ticks:60 (fun _ _ -> ()) in
  Alcotest.(check int) "cancelled overflow never fires" 0 n;
  Alcotest.(check int) "empty" 0 (W.pending w)

let test_wheel_create_validation () =
  List.iter
    (fun (levels, slot_bits) ->
      match W.create ~levels ~slot_bits () with
      | _ -> Alcotest.failf "accepted levels=%d slot_bits=%d" levels slot_bits
      | exception Invalid_argument _ -> ())
    [ (0, 8); (4, 0); (8, 8); (1, 63) ]

(* Random storm checked against a model: a mix of in-horizon and
   overflow deadlines, a quarter cancelled, every survivor fires once
   at exactly its deadline and nothing else fires at all. *)
let test_wheel_storm () =
  let w = W.create ~levels:3 ~slot_bits:5 () in
  (* horizon 32768 *)
  let rng = Random.State.make [| 42; 27 |] in
  let n = 3000 in
  let alarms =
    Array.init n (fun i -> W.add w ~delay:(1 + Random.State.int rng 40_000) i)
  in
  let cancelled = Array.make n false in
  Array.iteri
    (fun i a ->
      if Random.State.int rng 4 = 0 then begin
        assert (W.cancel w a);
        cancelled.(i) <- true
      end)
    alarms;
  let fired = Array.make n false in
  let total =
    W.advance w ~ticks:40_001 (fun dl i ->
        if cancelled.(i) then Alcotest.fail "cancelled alarm fired";
        if fired.(i) then Alcotest.fail "alarm fired twice";
        fired.(i) <- true;
        Alcotest.(check int) "exact deadline" (W.deadline alarms.(i)) dl)
  in
  let live =
    Array.fold_left (fun acc c -> if c then acc else acc + 1) 0 cancelled
  in
  Alcotest.(check int) "every survivor fired" live total;
  Alcotest.(check int) "drained" 0 (W.pending w)

(* The headline property: tick cost independent of the number of
   pending alarms. The committed BENCH_E27.json records the precise
   per-tick numbers; here the same measurement is repeated coarsely —
   1000 vs 1_000_000 sleepers, none due inside the timed window — with
   a margin loose enough for any CI box (a per-pending-alarm scan
   would blow it by orders of magnitude). Then the big wheel drains
   completely, proving a million alarms actually all fire. *)
let test_wheel_million () =
  let timed_ticks = 8192 in
  let lo = 1 lsl 19 in
  let build n =
    let w = W.create () in
    let rng = Random.State.make [| 0xbeef; n |] in
    for i = 1 to n do
      ignore (W.add w ~delay:(lo + Random.State.int rng (1 lsl 18)) i)
    done;
    w
  in
  let time w =
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    let fired = W.advance w ~ticks:timed_ticks (fun _ _ -> ()) in
    let dt = Unix.gettimeofday () -. t0 in
    Alcotest.(check int) "nothing due in the timed window" 0 fired;
    Float.max dt 1e-9
  in
  let small = build 1_000 in
  let big = build 1_000_000 in
  Alcotest.(check int) "a million pending" 1_000_000 (W.pending big);
  let t_small = time small in
  let t_big = time big in
  let ratio = t_big /. t_small in
  if ratio > 100.0 then
    Alcotest.failf
      "tick cost grew with pending alarms: %.0f us vs %.0f us (%.1fx)"
      (t_big *. 1e6) (t_small *. 1e6) ratio;
  (* now drain it: every one of the million fires, none early/late
     enough to escape its [lo, lo + 2^18) band *)
  let fired = ref 0 in
  let budget = ref ((1 lsl 19) + (1 lsl 18) + 1) in
  while W.pending big > 0 && !budget > 0 do
    let step = min 4096 !budget in
    fired := !fired + W.advance big ~ticks:step (fun _ _ -> ());
    budget := !budget - step
  done;
  Alcotest.(check int) "all million fired" 1_000_000 !fired;
  Alcotest.(check int) "drained" 0 (W.pending big)

(* ---------------------------------------------------------------- *)
(* Hot-swap mutex sites                                             *)
(* ---------------------------------------------------------------- *)

let test_swap_api () =
  let plain = Mutex.create ~name:"plain" () in
  Alcotest.(check bool) "plain mutex has no tier" true
    (Mutex.current_tier plain = None);
  Alcotest.(check bool) "plain mutex cannot swap" false
    (Mutex.swap_to plain `Fast);
  let m = Mutex.with_swappable (fun () -> Mutex.create ~name:"api-site" ()) in
  Alcotest.(check bool) "registered" true (List.memq m (Mutex.swap_sites ()));
  Alcotest.(check bool) "starts on sys" true (Mutex.current_tier m = Some `Sys);
  Alcotest.(check bool) "flip accepted" true (Mutex.swap_to m `Fast);
  Alcotest.(check bool) "same-tier flip refused" false (Mutex.swap_to m `Fast);
  Alcotest.(check bool) "routed" true (Mutex.current_tier m = Some `Fast);
  (* every tier is reachable and the index round-trips *)
  List.iter
    (fun tier ->
      ignore (Mutex.swap_to m tier);
      Alcotest.(check bool)
        (Mutex.tier_name tier ^ " reached")
        true
        (Mutex.current_tier m = Some tier);
      Alcotest.(check bool)
        (Mutex.tier_name tier ^ " index round-trips")
        true
        (Mutex.tier_of_index (Mutex.tier_index tier) = Some tier);
      (* the lock still locks on this tier *)
      Mutex.lock m;
      Mutex.unlock m)
    Mutex.all_tiers;
  Alcotest.(check bool) "bogus index" true (Mutex.tier_of_index 999 = None)

(* Conservation across a flip storm: four threads hammer a plain
   counter under the lock while a flipper retiers the site through
   every tier as fast as it can. Any exclusion window opened by a swap
   shows up as a lost increment. *)
let test_swap_flip_storm () =
  let m = Mutex.with_swappable (fun () -> Mutex.create ~name:"storm-site" ()) in
  let workers = 4 and per = 30_000 in
  let counter = ref 0 in
  let finished = Atomic.make 0 in
  let ths =
    List.init workers (fun _ ->
        Thread.create
          (fun () ->
            for j = 1 to per do
              Mutex.lock m;
              counter := !counter + 1;
              Mutex.unlock m;
              (* hand the runtime lock around so the flipper actually
                 interleaves with the storm *)
              if j land 255 = 0 then Thread.yield ()
            done;
            Atomic.incr finished)
          ())
  in
  let flips = ref 0 in
  let i = ref 0 in
  let tiers = Array.of_list Mutex.all_tiers in
  while Atomic.get finished < workers do
    if Mutex.swap_to m tiers.(!i mod Array.length tiers) then incr flips;
    incr i;
    Thread.yield ()
  done;
  List.iter Thread.join ths;
  Alcotest.(check int) "conservation across flips" (workers * per) !counter;
  Alcotest.(check bool) "the storm actually flipped" true (!flips > 0);
  (* the site still works on whatever tier the storm left it *)
  Mutex.lock m;
  Mutex.unlock m

let test_spin_rounds_knob () =
  let orig = Mutex.spin_rounds () in
  Fun.protect
    ~finally:(fun () -> Mutex.set_spin_rounds orig)
    (fun () ->
      Mutex.set_spin_rounds 5;
      Alcotest.(check int) "retuned" 5 (Mutex.spin_rounds ());
      (match Mutex.set_spin_rounds (-1) with
      | () -> Alcotest.fail "negative spin accepted"
      | exception Invalid_argument _ -> ());
      Alcotest.(check int) "unchanged after rejection" 5 (Mutex.spin_rounds ());
      Mutex.set_spin_rounds 0;
      Alcotest.(check int) "zero means park immediately" 0
        (Mutex.spin_rounds ()))

(* ---------------------------------------------------------------- *)
(* Controller: pure decision core                                   *)
(* ---------------------------------------------------------------- *)

let ev kind site t0 dur =
  { Probe.t0; dur; kind; site; op = "load"; actor = 1; arg = 0 }

let test_fold_window () =
  let events =
    [ ev Probe.Acquire "a" 10 100; ev Probe.Acquire "a" 20 200;
      ev Probe.Acquire "a" 5 999 (* at the frontier: dropped *);
      ev Probe.Hold "a" 11 50; ev Probe.Hold "a" 21 70;
      ev Probe.Acquire "b" 30 400;
      (* non-lock kinds never count *)
      ev Probe.Wait "a" 12 1000; ev Probe.Signal "a" 13 0;
      ev Probe.Flip "a" 14 0 ]
  in
  let table = Controller.fold_window ~since:5 events in
  Alcotest.(check int) "two sites" 2 (Hashtbl.length table);
  let a = Hashtbl.find table "a" in
  Alcotest.(check int) "a acquires" 2 a.Controller.acquires;
  Alcotest.(check int) "a wait ns" 300 a.Controller.wait_ns;
  Alcotest.(check int) "a holds" 2 a.Controller.holds;
  Alcotest.(check int) "a hold ns" 120 a.Controller.hold_ns;
  let b = Hashtbl.find table "b" in
  Alcotest.(check int) "b acquires" 1 b.Controller.acquires;
  Alcotest.(check int) "b holds" 0 b.Controller.holds

let mk ~acquires ~wait ~holds ~hold =
  { Controller.acquires; wait_ns = wait; holds; hold_ns = hold }

let test_classify () =
  let p = { Controller.default_policy with min_samples = 8 } in
  let vote name want s =
    Alcotest.(check bool) name true (Controller.classify p s = want)
  in
  vote "below the sample floor" None
    (mk ~acquires:7 ~wait:700 ~holds:7 ~hold:7);
  (* mean wait 100 vs mean hold 1000: ratio 0.1 *)
  vote "uncontended wants fast" (Some `Fast)
    (mk ~acquires:8 ~wait:800 ~holds:8 ~hold:8_000);
  (* ratio exactly at the fast threshold is still fast *)
  vote "fast boundary inclusive" (Some `Fast)
    (mk ~acquires:8 ~wait:4_000 ~holds:8 ~hold:8_000);
  (* ratio 2: the middle belongs to the system mutex *)
  vote "middle wants sys" (Some `Sys)
    (mk ~acquires:8 ~wait:16_000 ~holds:8 ~hold:8_000);
  (* ratio 100 over real waits: convoy, queue lock *)
  vote "convoy wants the queue" (Some (`Queue Queuelock.MCS))
    (mk ~acquires:8 ~wait:800_000 ~holds:8 ~hold:8_000);
  (* ratio at the queue threshold with waits above the floor *)
  vote "queue boundary inclusive" (Some (`Queue Queuelock.MCS))
    (mk ~acquires:8 ~wait:640_000 ~holds:8 ~hold:160_000);
  (* high ratio but sub-floor waits: handoff overhead, not a convoy *)
  vote "queue vote under the wait floor is fast" (Some `Fast)
    (mk ~acquires:8 ~wait:40_000 ~holds:8 ~hold:8_000);
  (* no holds recorded at all: denominator clamps, ratio = mean wait *)
  vote "holdless high ratio still honours the floor" (Some `Fast)
    (mk ~acquires:8 ~wait:24_000 ~holds:0 ~hold:0)

(* ---------------------------------------------------------------- *)
(* Controller: windows driven deterministically via sample_once      *)
(* ---------------------------------------------------------------- *)

let traced f =
  Probe.reset ();
  Probe.enable ();
  (* the first event a thread records pays for its ring allocation;
     pay it here so it cannot inflate the first forged span's duration
     (fold_window ignores the instant kinds) *)
  Probe.instant Probe.Signal ~site:"warmup" ~arg:0;
  Fun.protect
    ~finally:(fun () ->
      Probe.disable ();
      Probe.reset ())
    f

(* Forge one sampling window's worth of lock activity for a site: [n]
   acquire spans of [wait_ns] each (plus a clock read or two of noise,
   so keep the chosen scales far from any threshold) and [n] holds. *)
let forge ~site ~n ~wait_ns ~hold_ns =
  for _ = 1 to n do
    let t = Probe.now () in
    Probe.span Probe.Acquire ~site ~since:(t - wait_ns) ~arg:0;
    let t = Probe.now () in
    Probe.span Probe.Hold ~site ~since:(t - hold_ns) ~arg:0
  done

let test_policy =
  { Controller.default_policy with
    min_samples = 4;
    hysteresis = 2;
    tune_spin = false }

let test_controller_flip_probation () =
  traced (fun () ->
      let m = Mutex.with_swappable (fun () -> Mutex.create ~name:"ctl-site" ()) in
      let c = Controller.create ~policy:test_policy () in
      Fun.protect
        ~finally:(fun () -> Controller.stop c)
        (fun () ->
          let fast_window () =
            forge ~site:"ctl-site" ~n:8 ~wait_ns:2_000 ~hold_ns:100_000
          in
          fast_window ();
          Controller.sample_once c;
          Alcotest.(check int) "hysteresis holds the first vote" 0
            (Controller.flips c);
          Alcotest.(check bool) "still sys" true
            (Mutex.current_tier m = Some `Sys);
          fast_window ();
          Controller.sample_once c;
          Alcotest.(check int) "second agreeing window flips" 1
            (Controller.flips c);
          Alcotest.(check bool) "now fast" true
            (Mutex.current_tier m = Some `Fast);
          (* the flip is on probation: a similar window confirms it *)
          fast_window ();
          Controller.sample_once c;
          Alcotest.(check int) "trial accepted, no revert" 1
            (Controller.flips c);
          Alcotest.(check bool) "stays fast" true
            (Mutex.current_tier m = Some `Fast);
          (* regime change to a convoy; one executed flip means the
             next needs a doubled streak of 4 agreeing windows *)
          let queue_window () =
            forge ~site:"ctl-site" ~n:8 ~wait_ns:200_000 ~hold_ns:1_000
          in
          for _ = 1 to 3 do
            queue_window ();
            Controller.sample_once c
          done;
          Alcotest.(check int) "doubled hysteresis still pending" 1
            (Controller.flips c);
          queue_window ();
          Controller.sample_once c;
          Alcotest.(check int) "fourth agreeing window flips" 2
            (Controller.flips c);
          Alcotest.(check bool) "queue tier" true
            (Mutex.current_tier m = Some (`Queue Queuelock.MCS));
          (match Controller.decisions c with
          | [ d1; d2 ] ->
            Alcotest.(check string) "decision site" "ctl-site"
              d1.Controller.d_site;
            Alcotest.(check bool) "first decision to fast" true
              (d1.Controller.d_tier = `Fast);
            Alcotest.(check bool) "second decision to queue" true
              (d2.Controller.d_tier = `Queue Queuelock.MCS);
            Alcotest.(check bool) "queue decision saw the long waits" true
              (d2.Controller.d_wait_ns >= 100_000.)
          | ds -> Alcotest.failf "expected 2 decisions, got %d" (List.length ds));
          (* both flips are instants in the live trace *)
          let flip_instants =
            List.filter
              (fun (e : Probe.event) ->
                e.kind = Probe.Flip && e.site = "ctl-site")
              (Probe.live_snapshot ())
          in
          Alcotest.(check int) "flip instants recorded" 2
            (List.length flip_instants)))

let test_controller_revert_ban () =
  traced (fun () ->
      let m = Mutex.with_swappable (fun () -> Mutex.create ~name:"rev-site" ()) in
      let policy = { test_policy with hysteresis = 1 } in
      let c = Controller.create ~policy () in
      Fun.protect
        ~finally:(fun () -> Controller.stop c)
        (fun () ->
          let window ~wait_ns () =
            forge ~site:"rev-site" ~n:8 ~wait_ns ~hold_ns:100_000
          in
          window ~wait_ns:2_000 ();
          Controller.sample_once c;
          Alcotest.(check bool) "flipped to fast" true
            (Mutex.current_tier m = Some `Fast);
          (* the post-flip window regresses far past baseline * 1.5:
             probation reverts the site and bans the tier *)
          window ~wait_ns:50_000 ();
          Controller.sample_once c;
          Alcotest.(check bool) "reverted to sys" true
            (Mutex.current_tier m = Some `Sys);
          Alcotest.(check int) "the revert is a logged decision" 2
            (Controller.flips c);
          (* the same vote can never take the site back to the tier
             probation rejected — even at hysteresis 1 *)
          window ~wait_ns:2_000 ();
          Controller.sample_once c;
          window ~wait_ns:2_000 ();
          Controller.sample_once c;
          Alcotest.(check bool) "banned tier never re-flips" true
            (Mutex.current_tier m = Some `Sys);
          Alcotest.(check int) "no further decisions" 2 (Controller.flips c);
          match List.rev (Controller.decisions c) with
          | last :: _ ->
            Alcotest.(check bool) "last decision is the fallback" true
              (last.Controller.d_tier = `Sys)
          | [] -> Alcotest.fail "no decisions logged"))

(* A tier so bad the site stops turning over never yields a full
   window; after the grace period the collapsed acquire count itself
   is the verdict. *)
let test_controller_collapse_revert () =
  traced (fun () ->
      let m =
        Mutex.with_swappable (fun () -> Mutex.create ~name:"dead-site" ())
      in
      let policy = { test_policy with hysteresis = 1 } in
      let c = Controller.create ~policy () in
      Fun.protect
        ~finally:(fun () -> Controller.stop c)
        (fun () ->
          forge ~site:"dead-site" ~n:8 ~wait_ns:2_000 ~hold_ns:100_000;
          Controller.sample_once c;
          Alcotest.(check bool) "flipped off a busy baseline" true
            (Mutex.current_tier m = Some `Fast);
          (* the site falls silent: two empty windows are grace... *)
          Controller.sample_once c;
          Controller.sample_once c;
          Alcotest.(check int) "grace windows hold the verdict" 1
            (Controller.flips c);
          (* ...the third convicts on the collapsed acquire count *)
          Controller.sample_once c;
          Alcotest.(check bool) "collapse reverts to sys" true
            (Mutex.current_tier m = Some `Sys);
          Alcotest.(check int) "revert logged" 2 (Controller.flips c)))

let test_controller_spin_steer () =
  traced (fun () ->
      let policy =
        { test_policy with
          tune_spin = true;
          hysteresis = 100 (* no flips: isolate the global actuator *) }
      in
      let spin0 = Mutex.spin_rounds () in
      let limits0 = Backoff.limits () in
      let c = Controller.create ~policy () in
      forge ~site:"spin-site" ~n:8 ~wait_ns:500 ~hold_ns:1_000;
      Controller.sample_once c;
      Alcotest.(check int) "short waits grow the spin budget"
        (min 16 (max 1 (spin0 * 2)))
        (Mutex.spin_rounds ());
      Alcotest.(check (pair int int)) "and widen the backoff" (16, 4096)
        (Backoff.limits ());
      let cur = Mutex.spin_rounds () in
      forge ~site:"spin-site" ~n:8 ~wait_ns:50_000 ~hold_ns:1_000;
      Controller.sample_once c;
      Alcotest.(check int) "long waits cut the spin budget" (cur / 2)
        (Mutex.spin_rounds ());
      Alcotest.(check (pair int int)) "and park sooner" (16, 1024)
        (Backoff.limits ());
      Controller.stop c;
      Alcotest.(check int) "stop restores the spin rounds" spin0
        (Mutex.spin_rounds ());
      Alcotest.(check (pair int int)) "stop restores the backoff" limits0
        (Backoff.limits ()))

let () =
  Alcotest.run "adaptive"
    [ ( "wheel",
        [ Alcotest.test_case "exact deadlines across cascades" `Quick
            test_wheel_exact;
          Alcotest.test_case "delay zero clamps to the next tick" `Quick
            test_wheel_clamp;
          Alcotest.test_case "bucket FIFO order" `Quick test_wheel_fifo;
          Alcotest.test_case "cancel unlinks, once" `Quick test_wheel_cancel;
          Alcotest.test_case "overflow beyond the horizon" `Quick
            test_wheel_overflow;
          Alcotest.test_case "shape validation" `Quick
            test_wheel_create_validation;
          Alcotest.test_case "random storm against a model" `Quick
            test_wheel_storm;
          Alcotest.test_case "a million alarms, flat tick cost" `Quick
            test_wheel_million ] );
      ( "swap",
        [ Alcotest.test_case "tier api contract" `Quick test_swap_api;
          Alcotest.test_case "flip storm conserves the counter" `Quick
            test_swap_flip_storm;
          Alcotest.test_case "spin rounds knob" `Quick test_spin_rounds_knob ]
      );
      ( "controller",
        [ Alcotest.test_case "fold_window aggregates per site" `Quick
            test_fold_window;
          Alcotest.test_case "classifier thresholds" `Quick test_classify;
          Alcotest.test_case "hysteresis, flip, probation accept" `Quick
            test_controller_flip_probation;
          Alcotest.test_case "probation revert and ban" `Quick
            test_controller_revert_ban;
          Alcotest.test_case "silent-site collapse reverts" `Quick
            test_controller_collapse_revert;
          Alcotest.test_case "spin steering and restore" `Quick
            test_controller_spin_steer ] ) ]
