type proc = { name : string; actions : Sysstate.action list }

type witness = string list

type stats = {
  states : int;
  terminals : int;
  deadlocks : (Sysstate.t * witness) list;
  violations : (string * witness) list;
}

(* A node is the shared state plus each process's remaining actions; the
   remaining-action lists are position-determined, so (state, positions)
   identifies the node. *)
let run ?invariant ?property ?(max_states = 1_000_000) ~init procs =
  let arrays = List.map (fun p -> Array.of_list p.actions) procs in
  let n = List.length procs in
  let visited : (Sysstate.t * int list, unit) Hashtbl.t =
    Hashtbl.create 4096
  in
  let states = ref 0 in
  let terminals = ref 0 in
  let deadlocks = ref [] in
  let violations = ref [] in
  let rec dfs state pcs trace =
    let key = (state, pcs) in
    if not (Hashtbl.mem visited key) then begin
      Hashtbl.add visited key ();
      incr states;
      if !states > max_states then
        failwith "Explore.run: state budget exceeded";
      (match invariant with
      | Some check -> (
        match check state with
        | Some msg -> violations := (msg, List.rev trace) :: !violations
        | None -> ())
      | None -> ());
      let enabled = ref [] in
      List.iteri
        (fun i arr ->
          let pc = List.nth pcs i in
          if pc < Array.length arr then begin
            let a = arr.(pc) in
            if a.Sysstate.guard state then enabled := (i, a) :: !enabled
          end)
        arrays;
      match !enabled with
      | [] ->
        let all_done =
          List.for_all2 (fun pc arr -> pc >= Array.length arr) pcs arrays
        in
        if all_done then begin
          incr terminals;
          match property with
          | Some check -> (
            match check state with
            | Some msg -> violations := (msg, List.rev trace) :: !violations
            | None -> ())
          | None -> ()
        end
        else deadlocks := (state, List.rev trace) :: !deadlocks
      | choices ->
        List.iter
          (fun (i, a) ->
            let state' = a.Sysstate.apply state in
            let pcs' = List.mapi (fun j pc -> if j = i then pc + 1 else pc) pcs in
            dfs state' pcs' (a.Sysstate.label :: trace))
          choices
    end
  in
  dfs init (List.init n (fun _ -> 0)) [];
  { states = !states; terminals = !terminals; deadlocks = !deadlocks;
    violations = !violations }

let check ?invariant ?property ~init procs =
  let stats = run ?invariant ?property ~init procs in
  match (stats.deadlocks, stats.violations) with
  | [], [] -> Ok stats
  | (_, w) :: _, _ ->
    Error (Printf.sprintf "deadlock after [%s]" (String.concat "; " w))
  | [], (msg, w) :: _ ->
    Error (Printf.sprintf "%s after [%s]" msg (String.concat "; " w))
