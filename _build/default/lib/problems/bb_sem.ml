(** Bounded buffer with semaphores — Dijkstra's classic three-semaphore
    solution: [empty] counts free slots, [full] counts items, [mutex]
    serializes buffer access. *)

open Sync_platform
open Sync_taxonomy

type t = {
  empty : Semaphore.Counting.t;
  full : Semaphore.Counting.t;
  mutex : Semaphore.Counting.t;
  res_put : pid:int -> int -> unit;
  res_get : pid:int -> int;
}

let mechanism = "semaphore"

let create ~capacity ~put ~get =
  { empty = Semaphore.Counting.create capacity;
    full = Semaphore.Counting.create 0;
    mutex = Semaphore.Counting.create 1;
    res_put = put;
    res_get = get }

let put t ~pid v =
  Semaphore.Counting.p t.empty;
  Semaphore.Counting.p t.mutex;
  t.res_put ~pid v;
  Semaphore.Counting.v t.mutex;
  Semaphore.Counting.v t.full

let get t ~pid =
  Semaphore.Counting.p t.full;
  Semaphore.Counting.p t.mutex;
  let v = t.res_get ~pid in
  Semaphore.Counting.v t.mutex;
  Semaphore.Counting.v t.empty;
  v

let stop _ = ()

let meta =
  Meta.make ~mechanism ~problem:"bounded-buffer"
    ~fragments:
      [ ("bb-no-overfill", [ "P(empty)"; "V(empty)" ]);
        ("bb-no-underflow", [ "P(full)"; "V(full)" ]);
        ("bb-access-exclusion", [ "P(mutex)"; "V(mutex)" ]) ]
    ~info_access:
      [ (Info.Local_state, Meta.Indirect); (Info.Sync_state, Meta.Indirect) ]
    ~aux_state:[ "empty/full token counts mirror buffer occupancy" ]
    ~separation:Meta.Separated ()
