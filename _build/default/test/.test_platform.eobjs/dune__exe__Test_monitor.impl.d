test/test_monitor.ml: Alcotest Atomic List Monitor Protected Sync_monitor Sync_platform Testutil Thread
