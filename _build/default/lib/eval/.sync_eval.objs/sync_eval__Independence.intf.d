lib/eval/independence.mli: Format Registry
