(* [Wall] duplicates Clock.now_ns's one-liner rather than calling it:
   Clock's virtual half uses the Mutex facade, and Mutex needs deadlines
   for [try_lock_for], so depending on Clock here would be a cycle. *)

type t = Wall of int64 | Polls of int ref | Never

let now_ns () = Int64.of_float (Unix.gettimeofday () *. 1e9)

(* A non-positive budget is already expired: the timed waits promise a
   fast reject with no syscall-level park on timeout = 0, and under
   Detrt that means a poll budget of zero, not the usual floor of 2
   (the serve tier fast-rejects expired request deadlines on this). *)
let budget_of_ns ns =
  if Int64.compare ns 0L <= 0 then 0
  else
    let polls = Int64.to_int (Int64.div ns 50_000L) in
    max 2 (min 100_000 polls)

let after_ns ns =
  if Detrt.active () then Polls (ref (budget_of_ns ns))
  else Wall (Int64.add (now_ns ()) ns)

let after_s s = after_ns (Int64.of_float (s *. 1e9))

let never = Never

let expired = function
  | Never -> false
  | Wall d -> now_ns () >= d
  | Polls b ->
    if !b <= 0 then true
    else begin
      decr b;
      false
    end
