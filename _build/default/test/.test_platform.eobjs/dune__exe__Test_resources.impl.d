test/test_resources.ml: Alcotest Busywork Disk Int64 Ivl List Process QCheck QCheck_alcotest Ring Slot Store Sync_platform Sync_problems Sync_resources Trace
