(** Fault injection for crash-safety testing.

    A {e site} is a named point in platform or workload code —
    ["waitq.pre-wait"], ["waitq.post-wakeup"], ["bb.put.body"], ... —
    where an abort may be injected. Production code calls {!site}
    unconditionally; it is free (a single ref read) unless a {e plan} is
    installed with {!with_plan}, in which case the plan decides, per hit,
    whether to raise {!Injected}.

    Determinism: a plan's decisions depend only on the order in which
    sites are hit (for {!Nth}/{!Always}) or on a seeded {!Prng} stream
    (for {!Prob}) — never on wall-clock time or the global [Random]
    state. Under a {!Detrt} run the hit order is fixed by the schedule,
    so a failing (seed, schedule) pair replays the same injections
    byte-for-byte. *)

exception Injected of string
(** Raised by {!site}; the payload is the site name. *)

(** Per-site firing rule. *)
type trigger =
  | Never
  | Always  (** every hit *)
  | Nth of int  (** exactly the [n]-th hit of this site (1-based) *)
  | Every of int  (** hits [n, 2n, 3n, ...] *)
  | Prob of float  (** each hit independently, with this probability *)

type plan

val plan : ?seed:int -> (string * trigger) list -> plan
(** [plan rules] fires according to [rules]; sites not listed never
    fire. [seed] feeds the {!Prob} decisions (default 0). *)

val with_plan : plan -> (unit -> 'a) -> 'a
(** Install [p] for the dynamic extent of the call (the previous plan, if
    any, is restored on exit). Hit counters in [p] are reset on entry, so
    re-running the same closure replays the same injections. *)

val active : unit -> bool
(** A plan is currently installed. *)

val site : string -> unit
(** Register one hit of the named site; raises {!Injected} if the current
    plan says so, returns unit otherwise (always, when no plan is
    installed, or when the calling actor is {!mask}ed). *)

val mask : (unit -> 'a) -> 'a
(** Run [f] with injection suppressed for the calling actor (virtual
    task inside a deterministic run, OS thread otherwise); nests. Sites
    hit while masked neither fire nor advance their counters.

    Mechanisms mask their release/commit-side code — everything that
    runs after an operation's effect has committed, plus abort-recovery
    paths — because an injection there can no longer be compensated: the
    analogue of disabling thread cancellation in a cleanup handler.
    Acquire-side waits stay injectable. *)

val masked : unit -> bool
(** The calling actor is inside {!mask} (and a plan is installed). *)

val set_task_provider : (unit -> int option) -> unit
(** How {!mask} identifies the calling actor when OS-thread identity is
    not enough; installed by {!Detrt} so masks are per virtual task
    inside a deterministic run. *)

val hits : plan -> (string * int) list
(** Observed hit counts per site (including hits that fired), most
    recent plan run. *)

val fired : plan -> int
(** Total number of injections this plan performed. *)

(** {1 Abort policies}

    What a mechanism guarantees when a user-supplied body or guard raises
    (including via {!site}). Surfaced by each mechanism library as
    [abort_policy] and reported in the robustness scorecard. *)

type abort_policy =
  [ `Propagate  (** synchronizer state restored, exception re-raised *)
  | `Poison  (** subsequent/blocked operations fail fast with an error *)
  | `Rollback  (** partial protocol steps are compensated, then re-raise *)
  ]

val abort_policy_to_string : abort_policy -> string
