(** Mutual-exclusion locks, deterministic-run aware.

    This module shadows the stdlib [Mutex] inside [Sync_platform] (and in
    every file that opens it). A mutex created during a {!Detrt} run is a
    virtual-task mutex whose blocking is controlled by the deterministic
    scheduler; anywhere else it is a plain system mutex. Mechanism code is
    written against the ordinary stdlib signature and needs no changes.

    When the {!Deadlock} watchdog is enabled at creation time the mutex
    reports its holder/waiter edges to the wait-for graph.

    When {!Fastpath} is active at creation time the mutex instead uses
    the contention-adaptive tier (E22): a single-word atomic with a CAS
    fast path, a bounded randomized spin on contention, and a parked
    slow path on a private stdlib mutex/condition pair. The observable
    contract is identical; only the cost profile changes.

    When a {!Sync_prims.Prims} class is selected at creation time (E25
    hierarchy runs) the mutex is instead built from that restricted
    atomic class — bakery on read/write registers, test-and-CAS on CAS,
    ticket on fetch-and-add, or an LL/SC-emulated lock.

    When a {!Sync_prims.Queuelock} kind is selected at creation time
    (E23 scalable-lock runs) the mutex is a queue lock with local
    spinning — MCS, CLH, or a proportional-backoff ticket lock — whose
    contended handoff touches one waiter's cache line instead of
    invalidating every spinner. Selection precedence is Det > Prim >
    Queue > Fast > Sys.

    The representation is exposed so that {!Condition} can pair det
    conditions with det mutexes and park waiters of adaptive mutexes;
    treat it as internal. *)

type fast = {
  state : int Atomic.t;
  pm : Stdlib.Mutex.t;
  pc : Stdlib.Condition.t;
}

type impl =
  | Sys of Stdlib.Mutex.t
  | Det of Detrt.mutex
  | Fast of fast
  | Prim of Sync_prims.Prims.lock
  | Queue of Sync_prims.Queuelock.lock

type t = {
  impl : impl;
  rid : int;
  name : string;
  mutable acquired_at : int;
}

val fast_lock_raw : fast -> unit
(** Acquire the adaptive lock with no probe/watchdog bookkeeping.
    Internal: used by {!Condition} to re-acquire after a park. *)

val fast_unlock_raw : fast -> unit
(** Release the adaptive lock with no probe/watchdog bookkeeping.
    Internal: used by {!Condition} to release before a park. *)

val create : ?name:string -> unit -> t
(** System mutex normally; deterministic mutex inside a {!Detrt} run.
    [name] (default ["mutex"]) is the trace site label: when tracing is
    on, [lock]/[unlock] emit acquire and hold spans against it. *)

val lock : t -> unit

val unlock : t -> unit

val try_lock : t -> bool
(** Non-blocking acquire. Under {!Detrt} the attempt is itself a recorded
    scheduling point, so the outcome replays with the schedule. A
    successful attempt emits a zero-wait [Acquire] span when tracing is
    on, so try-lock users show up in profiled acquire counts. *)

val try_lock_for : t -> timeout_ns:int64 -> bool
(** [try_lock_for t ~timeout_ns] polls {!try_lock} until it succeeds or
    the monotonic deadline passes; [true] iff the lock was acquired.
    Real-thread polling uses {!Backoff} exponential backoff between
    attempts. Deterministic under {!Detrt} (the timeout becomes a poll
    budget, see {!Deadline}, and every poll is a scheduling point). *)

val protect : t -> (unit -> 'a) -> 'a
(** [protect m f] runs [f] with [m] held, releasing on any exit. *)
