lib/resources/slot.ml: Atomic Busywork
