lib/csp/csp.mli:
