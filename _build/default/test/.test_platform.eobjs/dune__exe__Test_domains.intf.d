test/test_domains.mli:
