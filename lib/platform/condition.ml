module Probe = Sync_trace.Probe
module Prims = Sync_prims.Prims
module Queuelock = Sync_prims.Queuelock

(* A condition pairs with whatever mutex the caller hands to [wait], and
   adaptive (Fast) mutexes cannot use [Stdlib.Condition.wait] — that
   needs a stdlib mutex to atomically release. So every real-thread
   condition carries two faces: the plain stdlib condvar [sys] for
   waits under Sys mutexes, and a private park lot [pk_m]/[pk_c]/[seq]
   for waits under Fast mutexes. The dispatch happens per wait, on the
   mutex's impl, because conditions are routinely created at runtime
   (Waitq allocates one per wait) and must work with either tier.

   Park protocol: the waiter takes [pk_m], snapshots [seq], bumps
   [parked], and only then releases the user mutex; a signaler that ran
   after the user mutex was released must therefore observe
   [parked > 0], and its seq bump under [pk_m] cannot fire before the
   waiter is actually waiting. Wakeups are level-triggered on [seq]
   having moved, so a signal can wake more than one parked waiter
   spuriously — allowed by the Mesa contract (every caller re-checks
   its predicate). *)
type t =
  | Det of Detrt.cond
  | Real of real

and real = {
  sys : Stdlib.Condition.t;
  pk_m : Stdlib.Mutex.t;
  pk_c : Stdlib.Condition.t;
  mutable seq : int; (* guarded by pk_m *)
  parked : int Atomic.t; (* fast-mutex waiters parked or about to park *)
}

let create () =
  if Detrt.active () then Det (Detrt.cond ())
  else
    Real
      { sys = Stdlib.Condition.create ();
        pk_m = Stdlib.Mutex.create ();
        pk_c = Stdlib.Condition.create ();
        seq = 0;
        parked = Atomic.make 0 }

(* Waiting releases the mutex internally, so the holder's Hold span must
   close here (park time is wait time, not hold time) and restart when
   the waiter re-acquires. *)
let close_hold (m : Mutex.t) =
  if m.Mutex.acquired_at <> 0 then begin
    Probe.span Hold ~site:m.Mutex.name ~since:m.Mutex.acquired_at ~arg:0;
    m.Mutex.acquired_at <- 0
  end

let reopen_hold (m : Mutex.t) =
  if Probe.enabled () then m.Mutex.acquired_at <- Probe.now ()

let worlds_mismatch () =
  failwith
    "Condition.wait: condition and mutex from different worlds (one \
     deterministic, one system); create both inside or both outside the \
     deterministic run"

let wait c (m : Mutex.t) =
  close_hold m;
  (match (c, m.Mutex.impl) with
  | Real r, Mutex.Sys sm -> Stdlib.Condition.wait r.sys sm
  | Real r, Mutex.Fast f ->
    Stdlib.Mutex.lock r.pk_m;
    let s = r.seq in
    Atomic.incr r.parked;
    Mutex.fast_unlock_raw f;
    while r.seq = s do
      Stdlib.Condition.wait r.pk_c r.pk_m
    done;
    Atomic.decr r.parked;
    Stdlib.Mutex.unlock r.pk_m;
    Mutex.fast_lock_raw f
  | Real r, Mutex.Prim p ->
    (* Class-restricted (E25) mutexes park exactly like Fast ones: the
       prim lock cannot feed [Stdlib.Condition.wait] either, so reuse
       the park lot with the prim's own release/acquire. *)
    Stdlib.Mutex.lock r.pk_m;
    let s = r.seq in
    Atomic.incr r.parked;
    p.Prims.lk_unlock ();
    while r.seq = s do
      Stdlib.Condition.wait r.pk_c r.pk_m
    done;
    Atomic.decr r.parked;
    Stdlib.Mutex.unlock r.pk_m;
    p.Prims.lk_lock ()
  | Real r, Mutex.Queue q ->
    (* Queue-tier (E23) mutexes park like Fast/Prim ones, releasing and
       re-acquiring through the queue lock's own closures. *)
    Stdlib.Mutex.lock r.pk_m;
    let s = r.seq in
    Atomic.incr r.parked;
    q.Queuelock.qk_unlock ();
    while r.seq = s do
      Stdlib.Condition.wait r.pk_c r.pk_m
    done;
    Atomic.decr r.parked;
    Stdlib.Mutex.unlock r.pk_m;
    q.Queuelock.qk_lock ()
  | Real r, Mutex.Swap sw ->
    (* Swappable (E27) sites park the same way; the re-acquire goes
       back through the indirection, so a waiter parked across a tier
       flip wakes up into the site's new tier. *)
    Stdlib.Mutex.lock r.pk_m;
    let s = r.seq in
    Atomic.incr r.parked;
    Mutex.swap_unlock_raw sw;
    while r.seq = s do
      Stdlib.Condition.wait r.pk_c r.pk_m
    done;
    Atomic.decr r.parked;
    Stdlib.Mutex.unlock r.pk_m;
    Mutex.swap_lock_raw sw
  | Det c, Mutex.Det dm -> Detrt.cond_wait c dm
  | Real _, Mutex.Det _
  | ( Det _,
      ( Mutex.Sys _ | Mutex.Fast _ | Mutex.Prim _ | Mutex.Queue _
      | Mutex.Swap _ ) ) ->
    worlds_mismatch ());
  reopen_hold m

(* Timed wait by bounded polling: stdlib condition variables have no
   timed wait, so [wait_for] releases the mutex, lets someone else run,
   and reacquires — a spurious wakeup per polling step, absorbed by the
   caller's predicate loop exactly like any other spurious wakeup. The
   condition variable itself is not consulted; correctness (never miss a
   state change) follows from re-checking the predicate with the mutex
   held on every iteration. *)
let wait_for c (m : Mutex.t) ~deadline =
  ignore c;
  if Deadline.expired deadline then false
  else begin
    close_hold m;
    (match m.Mutex.impl with
    | Mutex.Sys sm ->
      Stdlib.Mutex.unlock sm;
      Thread.yield ();
      Stdlib.Mutex.lock sm
    | Mutex.Fast f ->
      Mutex.fast_unlock_raw f;
      Thread.yield ();
      Mutex.fast_lock_raw f
    | Mutex.Prim p ->
      p.Prims.lk_unlock ();
      Thread.yield ();
      p.Prims.lk_lock ()
    | Mutex.Queue q ->
      q.Queuelock.qk_unlock ();
      Thread.yield ();
      q.Queuelock.qk_lock ()
    | Mutex.Swap sw ->
      Mutex.swap_unlock_raw sw;
      Thread.yield ();
      Mutex.swap_lock_raw sw
    | Mutex.Det dm ->
      Detrt.mutex_unlock dm;
      Detrt.yield ();
      Detrt.mutex_lock dm);
    reopen_hold m;
    true
  end

let signal = function
  | Det c -> Detrt.cond_signal c
  | Real r ->
    Stdlib.Condition.signal r.sys;
    if Atomic.get r.parked > 0 then begin
      Stdlib.Mutex.lock r.pk_m;
      r.seq <- r.seq + 1;
      Stdlib.Condition.signal r.pk_c;
      Stdlib.Mutex.unlock r.pk_m
    end

let broadcast = function
  | Det c -> Detrt.cond_broadcast c
  | Real r ->
    Stdlib.Condition.broadcast r.sys;
    if Atomic.get r.parked > 0 then begin
      Stdlib.Mutex.lock r.pk_m;
      r.seq <- r.seq + 1;
      Stdlib.Condition.broadcast r.pk_c;
      Stdlib.Mutex.unlock r.pk_m
    end
