(** Countdown latch and cyclic barrier.

    Test and workload plumbing: a latch lets a driver wait for [n] worker
    completions; a barrier aligns the start of contending workers so
    contention is actually exercised. *)

type t

val create : int -> t
(** [create n] requires [n >= 0] arrivals before {!wait} returns. *)

val arrive : t -> unit
(** Count one arrival. Raises [Invalid_argument] on extra arrivals. *)

val wait : t -> unit
(** Block until the count reaches zero. *)

val wait_timeout : t -> timeout_ns:int64 -> bool
(** Like {!wait} but gives up after [timeout_ns]; [true] iff the count
    reached zero. Used by deadlock-demonstration tests (E11) that must
    observe "this configuration never completes" in bounded time. *)

val pending : t -> int

module Barrier : sig
  type t

  val create : int -> t
  (** A reusable barrier for [n >= 1] parties. *)

  val await : t -> unit
  (** Block until [n] parties have arrived; the barrier then resets. *)
end
