lib/problems/alarm_sem.ml: Heap Info Meta Semaphore Sync_platform Sync_taxonomy
