(** Hoare'74's alarm-clock monitor: a single priority-wait condition
    ranked by absolute deadline; [tick] signals the earliest sleeper,
    which re-checks and cascades the signal to co-due sleepers. *)

open Sync_monitor
open Sync_taxonomy

type t = {
  mon : Monitor.t;
  wakeup : Monitor.Cond.t;
  mutable now : int;
}

let mechanism = "monitor"

let create () =
  let mon = Monitor.create ~discipline:`Hoare () in
  { mon; wakeup = Monitor.Cond.create mon; now = 0 }

let wakeme t ~pid n =
  ignore pid;
  Monitor.with_monitor t.mon (fun () ->
      let alarmsetting = t.now + n in
      while t.now < alarmsetting do
        Monitor.Cond.wait_pri t.wakeup alarmsetting
      done;
      (* Cascade: the next sleeper may be due at the same instant. *)
      Monitor.Cond.signal t.wakeup)

let tick t =
  Monitor.with_monitor t.mon (fun () ->
      t.now <- t.now + 1;
      Monitor.Cond.signal t.wakeup)

let now t = Monitor.with_monitor t.mon (fun () -> t.now)

let stop _ = ()

let meta =
  Meta.make ~mechanism ~problem:"alarm-clock"
    ~fragments:
      [ ("alarm-deadline",
         [ "while now<alarmsetting"; "wait_pri(wakeup,alarmsetting)" ]);
        ("alarm-order", [ "wait_pri"; "rank=alarmsetting"; "cascade-signal" ])
      ]
    ~info_access:
      [ (Info.Parameters, Meta.Direct); (Info.Local_state, Meta.Direct) ]
    ~aux_state:[ "now counter" ]
    ~separation:Meta.Separated ()
