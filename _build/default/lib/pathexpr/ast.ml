type t =
  | Op of string
  | Seq of t list
  | Sel of t list
  | Conc of t
  | Bounded of int * t
  | Pred of string * t

type spec = t list

let rec fold_leaves f acc = function
  | Op name -> f acc (`Op name)
  | Seq es | Sel es -> List.fold_left (fold_leaves f) acc es
  | Conc e | Bounded (_, e) -> fold_leaves f acc e
  | Pred (name, e) -> fold_leaves f (f acc (`Pred name)) e

let dedup names =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun n ->
      if Hashtbl.mem seen n then false
      else begin
        Hashtbl.add seen n ();
        true
      end)
    names

let ops spec =
  let collect acc = function `Op n -> n :: acc | `Pred _ -> acc in
  dedup (List.rev (List.fold_left (fold_leaves collect) [] spec))

let predicates spec =
  let collect acc = function `Pred n -> n :: acc | `Op _ -> acc in
  dedup (List.rev (List.fold_left (fold_leaves collect) [] spec))

(* Precedence levels: Seq = 0 (loosest), Sel = 1, primaries = 2. A child is
   parenthesized when its level is strictly looser than its context. *)
let rec level = function
  | Seq _ -> 0
  | Sel _ -> 1
  | Op _ | Conc _ | Bounded _ -> 2
  | Pred (_, e) -> level e

let rec pp_prec ctx ppf e =
  let lvl = level e in
  let parens = lvl < ctx in
  if parens then Format.pp_print_string ppf "(";
  (match e with
  | Op name -> Format.pp_print_string ppf name
  | Seq es ->
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf " ; ")
      (pp_prec 1) ppf es
  | Sel es ->
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf " , ")
      (pp_prec 2) ppf es
  | Conc e -> Format.fprintf ppf "{ %a }" (pp_prec 0) e
  | Bounded (n, e) -> Format.fprintf ppf "%d : (%a)" n (pp_prec 0) e
  | Pred (name, e) -> Format.fprintf ppf "[%s] %a" name (pp_prec 2) e);
  if parens then Format.pp_print_string ppf ")"

let pp ppf e = pp_prec 0 ppf e

let pp_spec ppf spec =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
    (fun ppf e -> Format.fprintf ppf "path %a end" pp e)
    ppf spec

let to_string spec = Format.asprintf "%a" pp_spec spec

let rec equal a b =
  match (a, b) with
  | Op x, Op y -> String.equal x y
  | Seq xs, Seq ys | Sel xs, Sel ys ->
    List.length xs = List.length ys && List.for_all2 equal xs ys
  | Conc x, Conc y -> equal x y
  | Bounded (n, x), Bounded (m, y) -> n = m && equal x y
  | Pred (p, x), Pred (q, y) -> String.equal p q && equal x y
  | (Op _ | Seq _ | Sel _ | Conc _ | Bounded _ | Pred _), _ -> false

let equal_spec a b =
  List.length a = List.length b && List.for_all2 equal a b
