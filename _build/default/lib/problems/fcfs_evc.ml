(** FCFS with a sequencer and one eventcount: ticket then
    [await done ticket] — arrival order and exclusion in two lines, the
    request-time category expressed as directly as the mechanism ever
    gets. *)

open Sync_platform.Eventcount
open Sync_taxonomy

type t = {
  arrivals : Sequencer.t;
  completed : Eventcount.t;
  res_use : pid:int -> unit;
}

let mechanism = "eventcount"

let create ~use =
  { arrivals = Sequencer.create (); completed = Eventcount.create ();
    res_use = use }

let use t ~pid =
  let ticket = Sequencer.ticket t.arrivals in
  Eventcount.await t.completed ticket;
  Fun.protect
    ~finally:(fun () -> Eventcount.advance t.completed)
    (fun () -> t.res_use ~pid)

let stop _ = ()

let meta =
  Meta.make ~mechanism ~problem:"fcfs"
    ~fragments:
      [ ("fcfs-exclusion", [ "await(completed,ticket)" ]);
        ("fcfs-order", [ "sequencer"; "ticket" ]) ]
    ~info_access:
      [ (Info.Sync_state, Meta.Indirect); (Info.Request_time, Meta.Direct) ]
    ~separation:Meta.Separated ()
