type fairness = [ `Strong | `Weak ]

module Counting = struct
  type t = {
    mutex : Mutex.t;
    fairness : fairness;
    (* Strong: selective-wakeup queue; each waiter is woken exactly once and
       its P is thereby granted (the value was consumed by the waker). *)
    queue : unit Waitq.t;
    (* Weak: ordinary condition broadcast; woken waiters race to re-check. *)
    cond : Condition.t;
    mutable value : int;
    mutable weak_waiters : int;
  }

  let create ?(fairness = `Strong) n =
    assert (n >= 0);
    { mutex = Mutex.create (); fairness; queue = Waitq.create ();
      cond = Condition.create (); value = n; weak_waiters = 0 }

  let p t =
    Mutex.lock t.mutex;
    (match t.fairness with
    | `Strong ->
      (* A newcomer must not overtake parked waiters even if value > 0:
         strong semantics grant strictly in arrival order. *)
      if t.value > 0 && Waitq.is_empty t.queue then t.value <- t.value - 1
      else Waitq.wait t.queue ~lock:t.mutex ()
    | `Weak ->
      t.weak_waiters <- t.weak_waiters + 1;
      while t.value = 0 do
        Condition.wait t.cond t.mutex
      done;
      t.weak_waiters <- t.weak_waiters - 1;
      t.value <- t.value - 1);
    Mutex.unlock t.mutex

  let v t =
    Mutex.lock t.mutex;
    (match t.fairness with
    | `Strong ->
      (* Hand the unit of value directly to the oldest waiter if any. *)
      if not (Waitq.wake_first t.queue) then t.value <- t.value + 1
    | `Weak ->
      t.value <- t.value + 1;
      Condition.signal t.cond);
    Mutex.unlock t.mutex

  let try_p t =
    Mutex.lock t.mutex;
    let ok =
      match t.fairness with
      | `Strong -> t.value > 0 && Waitq.is_empty t.queue
      | `Weak -> t.value > 0
    in
    if ok then t.value <- t.value - 1;
    Mutex.unlock t.mutex;
    ok

  let value t =
    Mutex.lock t.mutex;
    let v = t.value in
    Mutex.unlock t.mutex;
    v

  let waiters t =
    Mutex.lock t.mutex;
    let n =
      match t.fairness with
      | `Strong -> Waitq.length t.queue
      | `Weak -> t.weak_waiters
    in
    Mutex.unlock t.mutex;
    n
end

module Binary = struct
  type t = { mutex : Mutex.t; queue : unit Waitq.t; mutable value : int }

  let create open_ =
    { mutex = Mutex.create (); queue = Waitq.create ();
      value = (if open_ then 1 else 0) }

  let p t =
    Mutex.lock t.mutex;
    if t.value = 1 && Waitq.is_empty t.queue then t.value <- 0
    else Waitq.wait t.queue ~lock:t.mutex ();
    Mutex.unlock t.mutex

  let v t =
    Mutex.lock t.mutex;
    if t.value = 1 then begin
      Mutex.unlock t.mutex;
      invalid_arg "Semaphore.Binary.v: already open"
    end;
    if not (Waitq.wake_first t.queue) then t.value <- 1;
    Mutex.unlock t.mutex

  let value t =
    Mutex.lock t.mutex;
    let v = t.value in
    Mutex.unlock t.mutex;
    v
end
