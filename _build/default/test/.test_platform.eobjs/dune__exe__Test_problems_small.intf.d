test/test_problems_small.mli:
