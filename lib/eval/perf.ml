open Sync_metrics
open Sync_workload

type row = {
  mechanism : string;
  problem : string;
  variant : string;
  tier : string;
  domains : int;
  throughput_per_s : float;
  p50_ns : int;
  p95_ns : int;
  p99_ns : int;
  p999_ns : int;
}

let row_of_cell (c : Sweep.cell) =
  let s = c.Sweep.report.Report.summary in
  let q f = Summary.overall_quantile s f in
  { mechanism = c.Sweep.report.Report.mechanism;
    problem = c.Sweep.report.Report.problem;
    variant = c.Sweep.report.Report.variant;
    tier = c.Sweep.report.Report.tier;
    domains = c.Sweep.domains;
    throughput_per_s = s.Summary.throughput_per_s;
    p50_ns = q (fun o -> o.Summary.p50_ns);
    p95_ns = q (fun o -> o.Summary.p95_ns);
    p99_ns = q (fun o -> o.Summary.p99_ns);
    p999_ns = q (fun o -> o.Summary.p999_ns) }

let of_cells cells = List.map row_of_cell cells

let measure ?duration_ms ?(warmup_ms = 30) ?(domain_counts = [ 1; 2; 4 ])
    ?(mechanisms = Registry.mechanisms)
    ?(problems = [ "bounded-buffer"; "readers-writers"; "fcfs" ])
    ?(progress = ignore) () =
  let duration_ms =
    match duration_ms with
    | Some ms -> ms
    | None -> Loadgen.duration_from_env ~default:100
  in
  let spec =
    { (Sweep.default_baseline_spec ()) with
      Sweep.mechanisms; problems; domain_counts; duration_ms; warmup_ms }
  in
  match Sweep.baseline ~progress:(fun c -> progress (row_of_cell c)) spec with
  | Error _ as e -> e
  | Ok cells -> Ok (of_cells cells)

let coverage_errors () =
  List.concat_map
    (fun problem ->
      List.filter_map
        (fun mechanism ->
          match Target.create ~problem ~mechanism () with
          | Error e -> Some (Printf.sprintf "%s@%s: %s" problem mechanism e)
          | Ok instance ->
            let meta = instance.Target.meta in
            instance.Target.stop ();
            let found =
              Registry.find ~problem:meta.Sync_taxonomy.Meta.problem
                ~variant:meta.Sync_taxonomy.Meta.variant
                ~mechanism:meta.Sync_taxonomy.Meta.mechanism
            in
            if Option.is_some found then None
            else
              Some
                (Printf.sprintf
                   "workload target %s is not a registered solution"
                   (Sync_taxonomy.Meta.id meta)))
        (Target.mechanisms ~problem))
    Target.problems

let pp ppf rows =
  Format.fprintf ppf "%-12s %-18s %7s %12s %10s %10s %10s %10s@." "mechanism"
    "problem" "domains" "ops/s" "p50 ns" "p95 ns" "p99 ns" "p99.9 ns";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-12s %-18s %7d %12.0f %10d %10d %10d %10d@."
        r.mechanism r.problem r.domains r.throughput_per_s r.p50_ns r.p95_ns
        r.p99_ns r.p999_ns)
    rows

let to_json rows =
  Emit.List
    (List.map
       (fun r ->
         Emit.Obj
           [ ("mechanism", Emit.Str r.mechanism);
             ("problem", Emit.Str r.problem);
             ("variant", Emit.Str r.variant);
             ("tier", Emit.Str r.tier);
             ("domains", Emit.Int r.domains);
             ("throughput_per_s", Emit.Float r.throughput_per_s);
             ("p50_ns", Emit.Int r.p50_ns);
             ("p95_ns", Emit.Int r.p95_ns);
             ("p99_ns", Emit.Int r.p99_ns);
             ("p999_ns", Emit.Int r.p999_ns) ])
       rows)
