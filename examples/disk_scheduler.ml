(* The disk-head scheduler: SCAN vs FCFS arm travel.

   Runs the same random request stream through Hoare's elevator monitor
   and through a plain FCFS semaphore, holding the disk briefly per
   transfer so a request backlog forms, then prints the accumulated arm
   travel of each — regenerating the "why schedule the disk at all"
   motivation (and the data behind bench E-disk).

     dune exec examples/disk_scheduler.exe
*)

open Sync_problems

let travel name m =
  let travel, accesses =
    Disk_harness.run_stress m ~tracks:500 ~workers:8 ~requests_each:25
      ~hold_s:0.002 ~seed:42L ()
  in
  Printf.printf "%-24s %5d accesses, total arm travel %6d (%.1f per access)\n%!"
    name accesses travel
    (float_of_int travel /. float_of_int accesses);
  travel

let () =
  print_endline "-- elevator (SCAN) vs first-come-first-served --";
  let scan = travel "monitor SCAN" (module Disk_mon) in
  let scan_ser = travel "serializer SCAN" (module Disk_ser) in
  let scan_csp = travel "CSP SCAN" (module Disk_csp) in
  let fcfs = travel "FCFS baseline" (module Disk_fcfs) in
  Printf.printf
    "\nSCAN saved %.0f%% arm travel over FCFS on this workload\n"
    (100.0 *. (1.0 -. (float_of_int scan /. float_of_int fcfs)));
  ignore (scan_ser, scan_csp);
  print_endline "";
  print_endline "-- staged batch: the exact elevator order --";
  let order, expected, _events =
    Disk_harness.run_staged (module Disk_mon) ~head:50
      ~batch:[ 10; 60; 55; 20; 90; 5; 75 ] ()
  in
  Printf.printf "head at 50, pending [10;60;55;20;90;5;75]\n";
  Printf.printf "served:   [%s]\n"
    (String.concat "; " (List.map string_of_int order));
  Printf.printf "elevator: [%s]\n"
    (String.concat "; " (List.map string_of_int expected))
