lib/problems/disk_fcfs.ml: Fun Info Meta Semaphore Sync_platform Sync_taxonomy
