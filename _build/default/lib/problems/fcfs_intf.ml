(** The first-come-first-served problem (request-time information).

    A single exclusive resource must be granted in strict arrival order —
    the pure request-time scheme of the paper's test set (Section 4.1,
    footnote 2): no information about the operation, its parameters, or
    the resource state is involved, {e only} the order in which requests
    were made. *)

open Sync_taxonomy

let spec =
  Spec.make ~name:"fcfs"
    ~description:"an exclusive resource granted in strict request order"
    ~ops:[ "use" ]
    ~constraints:
      [ Constr.make ~id:"fcfs-exclusion" ~cls:Constr.Exclusion
          ~info:[ Info.Sync_state ]
          ~description:"if a process is using the resource then exclude all";
        Constr.make ~id:"fcfs-order" ~cls:Constr.Priority
          ~info:[ Info.Request_time ]
          ~description:
            "if A requested before B then A has priority over B" ]

module type S = sig
  type t

  val mechanism : string

  val create : use:(pid:int -> unit) -> t

  val use : t -> pid:int -> unit

  val stop : t -> unit

  val meta : Meta.t
end
