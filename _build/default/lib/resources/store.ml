type t = {
  work : int;
  version : int Atomic.t;
  active_readers : int Atomic.t;
  writing : bool Atomic.t;
  total_reads : int Atomic.t;
  total_writes : int Atomic.t;
}

let create ?(work = 50) () =
  { work; version = Atomic.make 0; active_readers = Atomic.make 0;
    writing = Atomic.make false; total_reads = Atomic.make 0;
    total_writes = Atomic.make 0 }

let fail what = raise (Busywork.Ill_synchronized ("store: " ^ what))

let read t =
  Atomic.incr t.active_readers;
  if Atomic.get t.writing then fail "read overlapping a write";
  Busywork.spin t.work;
  let v = Atomic.get t.version in
  if Atomic.get t.writing then fail "write began during a read";
  Atomic.decr t.active_readers;
  Atomic.incr t.total_reads;
  v

let write t =
  if not (Atomic.compare_and_set t.writing false true) then
    fail "concurrent writes";
  if Atomic.get t.active_readers > 0 then fail "write overlapping reads";
  Busywork.spin t.work;
  Atomic.incr t.version;
  if Atomic.get t.active_readers > 0 then fail "read began during a write";
  Atomic.set t.writing false;
  Atomic.incr t.total_writes

let version t = Atomic.get t.version

let reads t = Atomic.get t.total_reads

let writes t = Atomic.get t.total_writes
