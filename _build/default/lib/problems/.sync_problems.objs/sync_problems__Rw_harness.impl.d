lib/problems/rw_harness.ml: Atomic Fun Ivl Latch List Printf Process Rw_intf Sync_platform Sync_resources Testwait Thread Trace
