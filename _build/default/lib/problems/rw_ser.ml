(** Readers-writers with serializers.

    The crowds carry the synchronization-state information that monitors
    keep in explicit counts (paper §5.2): "readers active" is
    [not (Crowd.is_empty readers)], no bookkeeping. The three policies
    differ only in the guards (and, for FCFS, in sharing one queue):

    - {!Fcfs} uses a {b single} queue for both request types — the
      paper's showcase that serializers dissolve the monitor's
      request-type/request-time conflict: order is kept by the queue,
      types are distinguished by the guards.
    - {!Readers_prio} / {!Writers_prio} use one queue per type; priority
      is expressed by letting one type's guard consult the other type's
      queue. *)

open Sync_serializer
open Sync_taxonomy

type state = {
  ser : Serializer.t;
  readq : Serializer.Queue.t;
  writeq : Serializer.Queue.t;
  readers : Serializer.Crowd.t;
  writers : Serializer.Crowd.t;
  res_read : pid:int -> int;
  res_write : pid:int -> unit;
}

let make_state ~read ~write =
  let ser = Serializer.create () in
  { ser;
    readq = Serializer.Queue.create ~name:"readq" ser;
    writeq = Serializer.Queue.create ~name:"writeq" ser;
    readers = Serializer.Crowd.create ~name:"readers" ser;
    writers = Serializer.Crowd.create ~name:"writers" ser;
    res_read = read; res_write = write }

let do_read t ~pid ~until =
  Serializer.with_serializer t.ser (fun () ->
      Serializer.enqueue t.readq ~until;
      Serializer.join_crowd t.readers ~body:(fun () -> t.res_read ~pid))

let do_write t ~pid ~until =
  Serializer.with_serializer t.ser (fun () ->
      Serializer.enqueue t.writeq ~until;
      Serializer.join_crowd t.writers ~body:(fun () -> t.res_write ~pid))

module Readers_prio = struct
  type t = state

  let mechanism = "serializer"

  let policy = Rw_intf.Readers_priority

  let create ~read ~write = make_state ~read ~write

  let read (t : t) ~pid =
    do_read t ~pid ~until:(fun () -> Serializer.Crowd.is_empty t.writers)

  let write (t : t) ~pid =
    (* Writers also yield to waiting readers: the readq test is the whole
       priority constraint. *)
    do_write t ~pid ~until:(fun () ->
        Serializer.Crowd.is_empty t.readers
        && Serializer.Crowd.is_empty t.writers
        && Serializer.Queue.guard_is_empty t.readq)

  let stop _ = ()

  let meta =
    Meta.make ~mechanism ~problem:"readers-writers"
      ~variant:(Rw_intf.policy_to_string policy)
      ~fragments:
        [ ("rw-exclusion",
           [ "until empty(writers)"; "until empty(readers)&&empty(writers)";
             "join_crowd" ]);
          ("rw-priority", [ "empty(readq)"; "in"; "writer"; "guard" ]) ]
      ~info_access:
        [ (Info.Request_type, Meta.Direct); (Info.Sync_state, Meta.Direct) ]
      ~separation:Meta.Enforced ()
end

module Writers_prio = struct
  type t = state

  let mechanism = "serializer"

  let policy = Rw_intf.Writers_priority

  let create ~read ~write = make_state ~read ~write

  let read (t : t) ~pid =
    (* Readers yield to waiting writers. *)
    do_read t ~pid ~until:(fun () ->
        Serializer.Crowd.is_empty t.writers
        && Serializer.Queue.guard_is_empty t.writeq)

  let write (t : t) ~pid =
    do_write t ~pid ~until:(fun () ->
        Serializer.Crowd.is_empty t.readers
        && Serializer.Crowd.is_empty t.writers)

  let stop _ = ()

  let meta =
    Meta.make ~mechanism ~problem:"readers-writers"
      ~variant:(Rw_intf.policy_to_string policy)
      ~fragments:
        [ ("rw-exclusion",
           [ "until empty(writers)"; "until empty(readers)&&empty(writers)";
             "join_crowd" ]);
          ("rw-priority", [ "empty(writeq)"; "in"; "reader"; "guard" ]) ]
      ~info_access:
        [ (Info.Request_type, Meta.Direct); (Info.Sync_state, Meta.Direct) ]
      ~separation:Meta.Enforced ()
end

module Fcfs = struct
  (* One queue for both types: arrival order is admission order. *)
  type t = {
    ser : Serializer.t;
    arrivals : Serializer.Queue.t;
    readers : Serializer.Crowd.t;
    writers : Serializer.Crowd.t;
    res_read : pid:int -> int;
    res_write : pid:int -> unit;
  }

  let mechanism = "serializer"

  let policy = Rw_intf.Fcfs

  let create ~read ~write =
    let ser = Serializer.create () in
    { ser;
      arrivals = Serializer.Queue.create ~name:"arrivals" ser;
      readers = Serializer.Crowd.create ~name:"readers" ser;
      writers = Serializer.Crowd.create ~name:"writers" ser;
      res_read = read; res_write = write }

  let read (t : t) ~pid =
    Serializer.with_serializer t.ser (fun () ->
        Serializer.enqueue t.arrivals ~until:(fun () ->
            Serializer.Crowd.is_empty t.writers);
        Serializer.join_crowd t.readers ~body:(fun () -> t.res_read ~pid))

  let write (t : t) ~pid =
    Serializer.with_serializer t.ser (fun () ->
        Serializer.enqueue t.arrivals ~until:(fun () ->
            Serializer.Crowd.is_empty t.readers
            && Serializer.Crowd.is_empty t.writers);
        Serializer.join_crowd t.writers ~body:(fun () -> t.res_write ~pid))

  let stop _ = ()

  let meta =
    Meta.make ~mechanism ~problem:"readers-writers"
      ~variant:(Rw_intf.policy_to_string policy)
      ~fragments:
        [ ("rw-exclusion",
           [ "until empty(writers)"; "until empty(readers)&&empty(writers)";
             "join_crowd" ]);
          ("rw-priority", [ "single"; "shared"; "queue"; "FIFO" ]) ]
      ~info_access:
        [ (Info.Request_type, Meta.Direct); (Info.Sync_state, Meta.Direct);
          (Info.Request_time, Meta.Direct) ]
      ~separation:Meta.Enforced ()
end
