(* Bounded polling used by the driven scenario drivers. *)

let until ?(timeout = 10.0) what pred =
  let deadline =
    Int64.add (Sync_platform.Clock.now_ns ())
      (Int64.of_float (timeout *. 1e9))
  in
  let rec loop () =
    if pred () then ()
    else if Sync_platform.Clock.now_ns () >= deadline then
      failwith ("timed out waiting for " ^ what)
    else begin
      Thread.yield ();
      loop ()
    end
  in
  loop ()
