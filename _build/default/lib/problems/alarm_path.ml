(** Alarm clock with path expressions — again by synchronization
    procedures (the paper cites exactly this example from Habermann's
    path-expression report [11]): the paths only serialize the clock
    bookkeeping; deadlines live in an explicit schedule with a private
    gate per sleeper. *)

open Sync_platform
open Sync_taxonomy
module P = Sync_pathexpr.Pathexpr

type sleeper = { deadline : int; gate : Semaphore.Binary.t }

type t = {
  sys : P.t; (* path setalarm , advance end *)
  sleepers : sleeper Heap.t;
  mutable now : int;
}

let mechanism = "pathexpr"

let paths = "path setalarm , advance end"

let create () =
  { sys = P.of_string paths;
    sleepers = Heap.create ~cmp:(fun a b -> compare a.deadline b.deadline) ();
    now = 0 }

let wakeme t ~pid n =
  ignore pid;
  let gate =
    P.run t.sys "setalarm" (fun () ->
        let deadline = t.now + n in
        if t.now >= deadline then None
        else begin
          let s = { deadline; gate = Semaphore.Binary.create false } in
          Heap.push t.sleepers s;
          Some s.gate
        end)
  in
  match gate with None -> () | Some g -> Semaphore.Binary.p g

let tick t =
  P.run t.sys "advance" (fun () ->
      t.now <- t.now + 1;
      let rec wake_due () =
        match Heap.peek t.sleepers with
        | Some s when s.deadline <= t.now ->
          ignore (Heap.pop t.sleepers);
          Semaphore.Binary.v s.gate;
          wake_due ()
        | Some _ | None -> ()
      in
      wake_due ())

let now t = P.run t.sys "setalarm" (fun () -> t.now)

let stop _ = ()

let meta =
  Meta.make ~mechanism ~problem:"alarm-clock"
    ~fragments:
      [ ("alarm-deadline",
         [ "path"; "setalarm,advance"; "end"; "private"; "gate" ]);
        ("alarm-order", [ "deadline heap"; "wake-due-in-advance" ]) ]
    ~info_access:
      [ (Info.Parameters, Meta.Unsupported);
        (Info.Local_state, Meta.Unsupported) ]
    ~aux_state:
      [ "deadline heap"; "private gate per sleeper"; "now counter" ]
    ~sync_procedures:[ "setalarm"; "advance" ]
    ~separation:Meta.Blended ()
