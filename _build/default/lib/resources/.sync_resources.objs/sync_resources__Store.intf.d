lib/resources/store.mli:
