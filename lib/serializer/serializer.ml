(* Possession protocol: one low-level mutex protects everything. A waiter
   woken from the entry queue or from an event queue has had possession
   transferred to it ([busy] stays true). Guard re-evaluation happens at
   every possession-release point, under the lock. *)

open Sync_platform

type waiter = {
  guard : unit -> bool;
  rank : int;
  seq : int; (* global arrival order, used for longest-waiting arbitration *)
  cond : Condition.t;
  mutable released : bool;
}

type queue = { qname : string; mutable waiters : waiter list (* sorted *) }

type crowd = { cname : string; mutable members : int }

type t = {
  lock : Mutex.t;
  mutable busy : bool;
  mutable entry : waiter list; (* FIFO, sorted by seq *)
  mutable queues : queue list; (* creation order *)
  mutable next_seq : int;
}

let create () =
  { lock = Mutex.create (); busy = false; entry = []; queues = [];
    next_seq = 0 }

let fresh_waiter t ?(rank = 0) guard =
  let w =
    { guard; rank; seq = t.next_seq; cond = Condition.create ();
      released = false }
  in
  t.next_seq <- t.next_seq + 1;
  w

(* Insert by (rank, seq): FIFO within equal ranks. *)
let rec insert_sorted w = function
  | [] -> [ w ]
  | w' :: rest as l ->
    if (w.rank, w.seq) < (w'.rank, w'.seq) then w :: l
    else w' :: insert_sorted w rest

(* Must hold t.lock. Pick, among the heads of all event queues whose guard
   is true, the one waiting longest (smallest seq); transfer possession to
   it. Otherwise hand possession to the oldest entry waiter; otherwise the
   serializer becomes free. *)
let release_possession t =
  let eligible_head q =
    match q.waiters with
    | [] -> None
    | w :: _ -> if w.guard () then Some (q, w) else None
  in
  let best =
    List.fold_left
      (fun best q ->
        match (eligible_head q, best) with
        | None, best -> best
        | Some c, None -> Some c
        | Some (q, w), Some (_, w') ->
          if w.seq < w'.seq then Some (q, w) else best)
      None t.queues
  in
  match best with
  | Some (q, w) ->
    q.waiters <- List.filter (fun w' -> w' != w) q.waiters;
    w.released <- true;
    Condition.signal w.cond
  | None -> (
    match t.entry with
    | w :: rest ->
      t.entry <- rest;
      w.released <- true;
      Condition.signal w.cond
    | [] -> t.busy <- false)

let park t w =
  while not w.released do
    Condition.wait w.cond t.lock
  done

let acquire t =
  Mutex.lock t.lock;
  if t.busy then begin
    let w = fresh_waiter t (fun () -> true) in
    t.entry <- t.entry @ [ w ];
    park t w
  end
  else t.busy <- true;
  Mutex.unlock t.lock

let release t =
  Mutex.lock t.lock;
  release_possession t;
  Mutex.unlock t.lock

let with_serializer t f =
  acquire t;
  match f () with
  | v ->
    release t;
    v
  | exception e ->
    release t;
    raise e

let inside t =
  Mutex.lock t.lock;
  let b = t.busy in
  Mutex.unlock t.lock;
  b

module Queue = struct
  type serializer = t

  type t = { owner : serializer; q : queue }

  let create ?(name = "queue") owner =
    let q = { qname = name; waiters = [] } in
    Mutex.lock owner.lock;
    owner.queues <- owner.queues @ [ q ];
    Mutex.unlock owner.lock;
    { owner; q }

  let name t = t.q.qname

  let length t =
    Mutex.lock t.owner.lock;
    let n = List.length t.q.waiters in
    Mutex.unlock t.owner.lock;
    n

  let is_empty t = length t = 0

  let guard_length t = List.length t.q.waiters

  let guard_is_empty t = t.q.waiters = []
end

module Crowd = struct
  type serializer = t

  type t = { owner : serializer; c : crowd }

  let create ?(name = "crowd") owner =
    { owner; c = { cname = name; members = 0 } }

  let name t = t.c.cname

  (* Crowd tests are used inside guards, which already run under the
     serializer lock; they are also used from tests outside it. Reading an
     int field is atomic enough for both. *)
  let count t = t.c.members

  let is_empty t = t.c.members = 0
end

let enqueue ?rank (q : Queue.t) ~until =
  let t = q.Queue.owner in
  Mutex.lock t.lock;
  let w = fresh_waiter t ?rank until in
  q.Queue.q.waiters <- insert_sorted w q.Queue.q.waiters;
  release_possession t;
  park t w;
  Mutex.unlock t.lock

let join_crowd (c : Crowd.t) ~body =
  let t = c.Crowd.owner in
  Mutex.lock t.lock;
  c.Crowd.c.members <- c.Crowd.c.members + 1;
  release_possession t;
  Mutex.unlock t.lock;
  let regain () =
    Mutex.lock t.lock;
    if t.busy then begin
      let w = fresh_waiter t (fun () -> true) in
      t.entry <- t.entry @ [ w ];
      park t w
    end
    else t.busy <- true;
    c.Crowd.c.members <- c.Crowd.c.members - 1;
    Mutex.unlock t.lock
  in
  match body () with
  | v ->
    regain ();
    v
  | exception e ->
    regain ();
    raise e
