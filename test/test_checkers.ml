(* Edge cases of the trace-interval checkers: empty and single-op traces,
   and the malformed shapes (unmatched Enter, Exit without Enter, nested
   Enter) that the harness checkers must reject rather than silently
   accept. *)

open Sync_platform
open Sync_problems

let record t ~pid ~op ~phase = Trace.record t ~pid ~op ~phase ()

let events f =
  let t = Trace.create () in
  f t;
  Trace.events t

let expect_malformed name evs =
  match Ivl.check_wellformed evs with
  | Error msg ->
    if not (Astring.String.is_infix ~affix:"malformed" msg) then
      Alcotest.failf "%s: rejected but without a malformed-trace message: %s"
        name msg
  | Ok () -> Alcotest.failf "%s: malformed trace accepted" name

let test_empty_trace () =
  let evs = events (fun _ -> ()) in
  (match Ivl.check_wellformed evs with
  | Ok () -> ()
  | Error m -> Alcotest.failf "empty trace rejected: %s" m);
  Alcotest.(check int) "no intervals" 0 (List.length (Ivl.intervals evs));
  Alcotest.(check int) "no violations" 0
    (List.length
       (Ivl.exclusion_violations ~conflicts:(fun _ _ -> true)
          (Ivl.intervals evs)))

let test_single_complete_op () =
  let evs =
    events (fun t ->
        record t ~pid:1 ~op:"use" ~phase:Trace.Request;
        record t ~pid:1 ~op:"use" ~phase:Trace.Enter;
        record t ~pid:1 ~op:"use" ~phase:Trace.Exit)
  in
  (match Ivl.check_wellformed evs with
  | Ok () -> ()
  | Error m -> Alcotest.failf "single complete op rejected: %s" m);
  match Ivl.intervals evs with
  | [ i ] ->
    Alcotest.(check string) "op" "use" i.Ivl.op;
    Alcotest.(check bool) "request seen" true (i.Ivl.request >= 0)
  | l -> Alcotest.failf "expected 1 interval, got %d" (List.length l)

let test_unmatched_enter () =
  expect_malformed "unmatched enter"
    (events (fun t -> record t ~pid:1 ~op:"use" ~phase:Trace.Enter))

let test_exit_without_enter () =
  expect_malformed "exit without enter"
    (events (fun t -> record t ~pid:1 ~op:"use" ~phase:Trace.Exit))

let test_nested_enter () =
  expect_malformed "nested enter"
    (events (fun t ->
         record t ~pid:1 ~op:"use" ~phase:Trace.Enter;
         record t ~pid:1 ~op:"use" ~phase:Trace.Enter))

(* A trailing Enter must poison the harness checkers, not just the
   low-level predicate: [Ivl.intervals] alone would drop the incomplete
   invocation and the truncated trace would pass. *)
let test_harness_checkers_reject_malformed () =
  let evs =
    events (fun t ->
        record t ~pid:1 ~op:"use" ~phase:Trace.Request;
        record t ~pid:1 ~op:"use" ~phase:Trace.Enter)
  in
  (match Fcfs_harness.check { Fcfs_harness.trace = evs } with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "fcfs checker accepted a truncated trace");
  let store = Sync_resources.Store.create ~work:0 () in
  let evs_rw =
    events (fun t ->
        record t ~pid:1 ~op:"write" ~phase:Trace.Enter)
  in
  match Rw_harness.check_exclusion { Rw_harness.trace = evs_rw; store } with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "rw checker accepted a truncated trace"

let () =
  Alcotest.run "checkers"
    [ ( "edge-cases",
        [ Alcotest.test_case "empty trace" `Quick test_empty_trace;
          Alcotest.test_case "single complete op" `Quick
            test_single_complete_op;
          Alcotest.test_case "unmatched enter" `Quick test_unmatched_enter;
          Alcotest.test_case "exit without enter" `Quick
            test_exit_without_enter;
          Alcotest.test_case "nested enter" `Quick test_nested_enter;
          Alcotest.test_case "harness checkers reject malformed" `Quick
            test_harness_checkers_reject_malformed ] ) ]
