(* LL/SC emulated from single-word CAS with ABA tagging: the cell packs
   (tag, value) into one register word; [ll] returns the whole packed
   word as the reservation, [sc] CASes against it with the tag bumped.
   Any successful SC moves the tag, so a stale reservation's SC fails —
   {e unless} exactly [2^tag_bits] successful SCs intervened and the
   value field matches, which is the ABA escape hatch every real tagged
   emulation has. [tag_bits] is a constructor knob precisely so tests
   can shrink the tag space and pin that wraparound edge; at the default
   16 bits it needs 65 536 intervening SCs inside one reservation.

   Values are non-negative and bounded by the remaining bits
   ([Sys.int_size - 1 - tag_bits]); the lock and semaphore below stay
   within that by construction. Both are built {e only} from ll/sc (plus
   the level-triggered [await] wait, which is a read loop): the LLSC
   class's locks never touch the underlying CAS directly. *)

module Make (R : Regs.CAS) = struct
  type t = { cell : R.t; vbits : int; vmask : int; tagmask : int }

  type res = int

  let create ?(tag_bits = 16) v =
    if tag_bits < 1 || tag_bits > Sys.int_size - 9 then
      invalid_arg "Llsc.create: tag_bits out of range";
    let vbits = Sys.int_size - 1 - tag_bits in
    let vmask = (1 lsl vbits) - 1 in
    if v < 0 || v > vmask then invalid_arg "Llsc.create: value out of range";
    { cell = R.make v; vbits; vmask; tagmask = (1 lsl tag_bits) - 1 }

  let tag_bits t = Sys.int_size - 1 - t.vbits

  let ll t =
    let w = R.get t.cell in
    (w, w land t.vmask)

  let sc t r v =
    if v < 0 || v > t.vmask then invalid_arg "Llsc.sc: value out of range";
    let tag = ((r lsr t.vbits) + 1) land t.tagmask in
    R.cas t.cell r ((tag lsl t.vbits) lor v)

  let peek t = R.get t.cell land t.vmask

  let await_value t pred =
    R.await ~watch:[| t.cell |] (fun () -> pred (peek t))

  (* Unconditional store, as an ll/sc loop: retries are bounded by the
     SCs other threads actually complete. *)
  let rec store t v =
    let r, _ = ll t in
    if not (sc t r v) then store t v

  module Lock = struct
    type nonrec t = t

    let create () = create 0

    let try_lock l =
      let r, v = ll l in
      v = 0 && sc l r 1

    let rec lock l =
      if not (try_lock l) then begin
        await_value l (fun v -> v = 0);
        lock l
      end

    let unlock l = store l 0
  end

  module Sem = struct
    type nonrec t = t

    let create n =
      if n < 0 then invalid_arg "Llsc.Sem.create: negative value";
      create n

    let rec try_p s =
      let r, v = ll s in
      v > 0 && (sc s r (v - 1) || try_p s)

    let rec p s =
      if not (try_p s) then begin
        await_value s (fun v -> v > 0);
        p s
      end

    let rec p_poll s expired =
      if try_p s then true
      else if expired () then false
      else begin
        R.await ~watch:[| s.cell |] (fun () -> peek s > 0 || expired ());
        p_poll s expired
      end

    let rec v_n s n =
      let r, v = ll s in
      if not (sc s r (v + n)) then v_n s n

    let value = peek
  end

  (* The emulated cells presented as fetch-and-add registers, so the
     strong ticket semaphore ({!Ticket_sem.Make}) runs on the LLSC class
     with its FAA synthesized from ll/sc. *)
  module Faa_regs : Regs.FAA with type t = t = struct
    type nonrec t = t

    let make n = create n

    let get = peek

    let set = store

    let await ~watch pred =
      R.await ~watch:(Array.map (fun c -> c.cell) watch) pred

    let rec faa c n =
      let r, v = ll c in
      if sc c r (v + n) then v else faa c n
  end
end
