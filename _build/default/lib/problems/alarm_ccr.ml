(** Alarm clock with a conditional critical region: the enabling
    condition "now has reached my deadline" is a per-waiter guard over a
    captured parameter — the one scheduling shape CCRs express directly
    (contrast {!Disk_ccr}, where ranking {e between} waiters defeats
    guards). *)

open Sync_taxonomy

type shared = { mutable now : int }

type t = { v : shared Sync_ccr.Ccr.t }

let mechanism = "ccr"

let create () = { v = Sync_ccr.Ccr.create { now = 0 } }

let wakeme t ~pid n =
  ignore pid;
  let deadline = Sync_ccr.Ccr.region t.v (fun s -> s.now + n) in
  Sync_ccr.Ccr.await t.v (fun s -> s.now >= deadline)

let tick t = Sync_ccr.Ccr.region t.v (fun s -> s.now <- s.now + 1)

let now t = Sync_ccr.Ccr.region t.v (fun s -> s.now)

let stop _ = ()

let meta =
  Meta.make ~mechanism ~problem:"alarm-clock"
    ~fragments:
      [ ("alarm-deadline", [ "when now>=deadline" ]);
        ("alarm-order", [ "guard"; "per-waiter"; "deadline" ]) ]
    ~info_access:
      [ (Info.Parameters, Meta.Direct); (Info.Local_state, Meta.Direct) ]
    ~aux_state:[ "now counter" ]
    ~separation:Meta.Separated ()
