type t = {
  multicore : bool;
  min_wait : int;
  max_wait : int;
  mutable wait : int;
  mutable seed : int;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let check_limits ~who ~min_wait ~max_wait =
  if not (is_pow2 min_wait) then
    invalid_arg
      (Printf.sprintf "%s: min_wait %d not a positive power of two" who
         min_wait);
  if not (is_pow2 max_wait) then
    invalid_arg
      (Printf.sprintf "%s: max_wait %d not a positive power of two" who
         max_wait);
  if min_wait > max_wait then
    invalid_arg
      (Printf.sprintf "%s: min_wait %d exceeds max_wait %d" who min_wait
         max_wait)

(* Process-wide default spin bounds, read at {!create} time exactly like
   the multicore probe: changing them affects backoffs created after the
   call, never one already spinning. Both bounds live in one atomic so a
   reader can never observe min from one setting and max from another. *)
let default_limits = Atomic.make (16, 4096)

let set_limits ~min_wait ~max_wait =
  check_limits ~who:"Backoff.set_limits" ~min_wait ~max_wait;
  Atomic.set default_limits (min_wait, max_wait)

let limits () = Atomic.get default_limits

let with_limits ~min_wait ~max_wait f =
  check_limits ~who:"Backoff.with_limits" ~min_wait ~max_wait;
  let saved = Atomic.get default_limits in
  Atomic.set default_limits (min_wait, max_wait);
  Fun.protect ~finally:(fun () -> Atomic.set default_limits saved) f

(* Spin-vs-yield is decided per backoff, at creation: tests that pin the
   process to one core (or scenarios that spawn more threads than
   cores) get a yield-first backoff without a process-wide mode flip,
   and the answer tracks [Domain.recommended_domain_count] at the time
   the contended loop starts rather than at module initialization. *)
let create ?multicore ?min_wait ?max_wait () =
  let dmin, dmax = Atomic.get default_limits in
  let min_wait = Option.value min_wait ~default:dmin in
  let max_wait = Option.value max_wait ~default:dmax in
  if not (is_pow2 min_wait) then
    invalid_arg
      (Printf.sprintf "Backoff.create: min_wait %d not a positive power of two"
         min_wait);
  if not (is_pow2 max_wait) then
    invalid_arg
      (Printf.sprintf "Backoff.create: max_wait %d not a positive power of two"
         max_wait);
  if min_wait > max_wait then
    invalid_arg
      (Printf.sprintf "Backoff.create: min_wait %d exceeds max_wait %d"
         min_wait max_wait);
  let multicore =
    match multicore with
    | Some b -> b
    | None -> Domain.recommended_domain_count () > 1
  in
  { multicore; min_wait; max_wait; wait = min_wait; seed = 0x9e3779b9 }

let multicore t = t.multicore

(* xorshift step; cheap per-thread pseudo-randomization so that threads
   backing off together do not re-collide in lockstep. *)
let next_seed s =
  let s = s lxor (s lsl 13) in
  let s = s lxor (s lsr 7) in
  s lxor (s lsl 17)

(* On a single-core machine spinning can never help: the thread we are
   waiting on cannot run until we give up the core. Skip straight to
   yielding there; the exponential spin phase only pays off when the
   peer is live on another core. *)
let once t =
  if not t.multicore then Thread.yield ()
  else begin
    let spins = t.min_wait + (t.seed land (t.wait - 1)) in
    t.seed <- next_seed t.seed;
    if t.wait >= t.max_wait then Thread.yield ()
    else begin
      for _ = 1 to spins do
        Domain.cpu_relax ()
      done;
      t.wait <- t.wait * 2
    end
  end

let reset t = t.wait <- t.min_wait
