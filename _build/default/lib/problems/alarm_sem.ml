(** Alarm clock with semaphores: an explicit deadline heap and a private
    semaphore per sleeper — the by-hand reconstruction of the monitor's
    priority condition queue. *)

open Sync_platform
open Sync_taxonomy

module Sem = Semaphore.Counting

type sleeper = { deadline : int; gate : Sem.t }

type t = {
  e : Sem.t;
  sleepers : sleeper Heap.t; (* earliest deadline first *)
  mutable now : int;
}

let mechanism = "semaphore"

let create () =
  { e = Sem.create 1;
    sleepers = Heap.create ~cmp:(fun a b -> compare a.deadline b.deadline) ();
    now = 0 }

let wakeme t ~pid n =
  ignore pid;
  Sem.p t.e;
  let deadline = t.now + n in
  if t.now >= deadline then Sem.v t.e
  else begin
    let s = { deadline; gate = Sem.create 0 } in
    Heap.push t.sleepers s;
    Sem.v t.e;
    Sem.p s.gate
  end

let tick t =
  Sem.p t.e;
  t.now <- t.now + 1;
  let rec wake_due () =
    match Heap.peek t.sleepers with
    | Some s when s.deadline <= t.now ->
      ignore (Heap.pop t.sleepers);
      Sem.v s.gate;
      wake_due ()
    | Some _ | None -> ()
  in
  wake_due ();
  Sem.v t.e

let now t =
  Sem.p t.e;
  let n = t.now in
  Sem.v t.e;
  n

let stop _ = ()

let meta =
  Meta.make ~mechanism ~problem:"alarm-clock"
    ~fragments:
      [ ("alarm-deadline", [ "deadline heap"; "private gate"; "P(gate)" ]);
        ("alarm-order", [ "heap"; "pop-due-in-order"; "V(gate)" ]) ]
    ~info_access:
      [ (Info.Parameters, Meta.Indirect); (Info.Local_state, Meta.Indirect) ]
    ~aux_state:
      [ "deadline heap"; "private semaphore per sleeper"; "now counter" ]
    ~separation:Meta.Separated ()
