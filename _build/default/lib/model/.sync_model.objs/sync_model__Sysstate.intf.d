lib/model/sysstate.mli:
