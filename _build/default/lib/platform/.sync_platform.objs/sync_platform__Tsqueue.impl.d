lib/platform/tsqueue.ml: Clock Condition Int64 List Mutex Queue Thread
