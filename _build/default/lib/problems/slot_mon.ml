(** One-slot buffer with a Hoare monitor: history becomes the [full] flag
    — the paper's observation that past events usually leave a readable
    mark in local state. *)

open Sync_monitor
open Sync_taxonomy

type t = {
  mon : Monitor.t;
  turned : Monitor.Cond.t; (* "the turn changed" for both sides *)
  mutable full : bool;
  mutable busy : bool; (* an operation is mid-resource-access *)
  res_put : pid:int -> int -> unit;
  res_get : pid:int -> int;
}

let mechanism = "monitor"

let create ~put ~get =
  let mon = Monitor.create ~discipline:`Hoare () in
  { mon; turned = Monitor.Cond.create mon; full = false; busy = false;
    res_put = put; res_get = get }

let put t ~pid v =
  Protected.access t.mon
    ~before:(fun () ->
      while t.busy || t.full do
        Monitor.Cond.wait t.turned
      done;
      t.busy <- true)
    ~after:(fun () ->
      t.busy <- false;
      t.full <- true;
      Monitor.Cond.broadcast t.turned)
    (fun () -> t.res_put ~pid v)

let get t ~pid =
  Protected.access t.mon
    ~before:(fun () ->
      while t.busy || not t.full do
        Monitor.Cond.wait t.turned
      done;
      t.busy <- true)
    ~after:(fun () ->
      t.busy <- false;
      t.full <- false;
      Monitor.Cond.broadcast t.turned)
    (fun () -> t.res_get ~pid)

let stop _ = ()

let meta =
  Meta.make ~mechanism ~problem:"one-slot-buffer"
    ~fragments:
      [ ("slot-alternation", [ "full"; "flag"; "wait(turned)"; "broadcast" ]);
        ("slot-access-exclusion", [ "busy"; "flag"; "wait(turned)" ]) ]
    ~info_access:
      [ (Info.History, Meta.Indirect); (Info.Sync_state, Meta.Indirect) ]
    ~aux_state:[ "full flag records whether put happened last"; "busy flag" ]
    ~separation:Meta.Separated ()
