(** The readers-writers database problem (request-type +
    synchronization-state information), after Courtois-Heymans-Parnas
    [CACM'71] — the paper's own working example (Figures 1 and 2).

    All variants share the exclusion constraint (readers may overlap;
    a writer excludes everyone) and differ only in the priority
    constraint:

    - [readers-priority]: no reader waits unless a writer has already
      been granted the resource (writers may starve) — Courtois problem 1;
    - [writers-priority]: once a writer is waiting, newly arriving readers
      wait (readers may starve) — Courtois problem 2;
    - [fcfs]: requests are {e admitted} in arrival order (readers still
      overlap once admitted) — the variant that forces the monitor's
      two-stage queue (paper Section 5.2);
    - [none]: exclusion only, no priority guarantee (e.g. the plain
      [path {read} , write end]).

    The trio readers-priority / writers-priority / fcfs is the paper's
    instrument for measuring constraint independence (Section 4.2): same
    exclusion constraint, different priority constraints. *)

open Sync_taxonomy

type policy = Readers_priority | Writers_priority | Fcfs | No_priority

let policy_to_string = function
  | Readers_priority -> "readers-priority"
  | Writers_priority -> "writers-priority"
  | Fcfs -> "fcfs"
  | No_priority -> "none"

let exclusion_constraint =
  Constr.make ~id:"rw-exclusion" ~cls:Constr.Exclusion
    ~info:[ Info.Request_type; Info.Sync_state ]
    ~description:
      "if a writer is in the resource then exclude all; if a reader is in \
       the resource then exclude writers"

let priority_constraint = function
  | Readers_priority ->
    Constr.make ~id:"rw-priority" ~cls:Constr.Priority
      ~info:[ Info.Request_type ]
      ~description:
        "if readers and writers are waiting then readers have priority \
         over writers"
  | Writers_priority ->
    Constr.make ~id:"rw-priority" ~cls:Constr.Priority
      ~info:[ Info.Request_type ]
      ~description:
        "if readers and writers are waiting then writers have priority \
         over readers"
  | Fcfs ->
    Constr.make ~id:"rw-priority" ~cls:Constr.Priority
      ~info:[ Info.Request_time ]
      ~description:"if A requested before B then A is admitted before B"
  | No_priority ->
    Constr.make ~id:"rw-priority" ~cls:Constr.Priority ~info:[]
      ~description:"no priority guarantee"

let spec policy =
  Spec.make
    ~name:("readers-writers-" ^ policy_to_string policy)
    ~description:"a database shared by concurrent readers and exclusive \
                  writers"
    ~ops:[ "read"; "write" ]
    ~constraints:[ exclusion_constraint; priority_constraint policy ]

module type S = sig
  type t

  val mechanism : string

  val policy : policy

  val create : read:(pid:int -> int) -> write:(pid:int -> unit) -> t

  val read : t -> pid:int -> int

  val write : t -> pid:int -> unit

  val stop : t -> unit

  val meta : Meta.t
end
