(** Deterministic cooperative runtime (the [`Det] process backend).

    Runs a whole concurrent scenario as virtual tasks — OCaml 5 effect
    fibers — multiplexed on the calling thread. Context switches happen
    only at the blocking primitives (mutex, condition, spawn/join,
    quiescence), and every scheduling decision is delegated to the
    [choose] callback, so an execution is a pure function of the scenario
    and the choice sequence: recording the choices makes any interleaving
    replayable byte-for-byte. Exploration strategies (seeded random walk,
    PCT priority fuzzing, bounded exhaustive DFS) live in [sync_detsched];
    this module is only the runtime.

    The platform's {!Mutex} and {!Condition} facades dispatch here when
    created during a run, which is what lets the {e real} mechanism
    implementations (monitors, serializers, path-expression engines, CCRs,
    CSP) execute unmodified under controlled schedules. Everything the
    scenario synchronizes on must therefore be created {e inside} the
    [run] body. *)

exception Deadlock of string
(** No task can make progress and at least one is blocked. *)

exception Step_limit of int
(** The run exceeded [max_steps] scheduling decisions. *)

type task

(** Observable run events, for exploration engines that need to know
    {e what} each scheduling quantum did, not just which task ran. Object
    identities are per-run creation ordinals; creation order is itself
    schedule-determined, so ids are stable across replays of the same
    schedule and comparable across runs that share a prefix. *)
module Obs : sig
  type objid =
    | Mutex_o of int  (** a deterministic mutex *)
    | Cond_o of int  (** a deterministic condition variable *)
    | Task_o of int  (** a task's lifecycle (join/finish) *)
    | Reg_o of int  (** a deterministic integer register (E25 prims) *)
    | Global  (** scheduler-global effects: spawn, quiescence *)

  type op =
    | Lock
    | Try_lock of bool  (** the recorded outcome of the attempt *)
    | Unlock
    | Wait
    | Signal
    | Broadcast
    | Spawn
    | Join
    | Finish
    | Quiesce
    | Read  (** register read *)
    | Write  (** register write *)
    | Rmw of bool  (** register CAS/FAA; the recorded success *)

  type event =
    | Choice of { kind : [ `Task | `Waiter ]; candidates : int array }
        (** emitted immediately before [choose] is consulted: a task pick
            in the scheduler, or a waiter pick on unlock/signal *)
    | Sched of { tid : int; runnable : int array }
        (** a task was dispatched (including forced, single-candidate
            dispatches, which never reach [choose]) — delimits quanta *)
    | Op of { tid : int; obj : objid; op : op }
        (** a primitive operation inside the current quantum *)

  val objid_to_string : objid -> string
end

val run :
  ?max_steps:int ->
  ?observe:(Obs.event -> unit) ->
  choose:(int array -> int) ->
  (unit -> unit) ->
  int
(** [run ~choose body] executes [body] as the main virtual task and
    schedules it and everything it spawns to completion; returns the
    number of scheduling steps taken. Whenever more than one continuation
    is possible, [choose] receives the candidate task ids and returns the
    index to run ([choose] is never called with fewer than two
    candidates). [observe] receives the event narration of the run (see
    {!Obs}); it must not touch deterministic primitives itself.
    Re-raises the first exception escaping any task;
    raises {!Deadlock} / {!Step_limit} otherwise when stuck or runaway.
    Runs do not nest on a domain, but independent domains may each drive
    their own run concurrently (scheduler state is domain-local). *)

val active : unit -> bool
(** A deterministic run is in progress (creation-time dispatch). *)

val in_fiber : unit -> bool
(** The caller is executing inside a virtual task. *)

val spawn : ?name:string -> (unit -> unit) -> task
(** Start a new virtual task; a scheduling point. *)

val join : task -> unit
(** Block the calling task until [t] completes. *)

val yield : unit -> unit
(** Voluntary scheduling point; no-op outside a run. *)

val relax : unit -> unit
(** Give another task/thread a chance: {!yield} inside a run,
    [Thread.yield] outside. The polling step of the timed waits. *)

val self_info : unit -> (int * string) option
(** [(tid, name)] of the current virtual task; [None] outside a run.
    Also registered as the {!Deadlock} watchdog's task provider. *)

val await_quiescence : unit -> unit
(** Park the calling task until no other task is runnable — the
    deterministic replacement for the stress harnesses' settle delays:
    "everyone else has either finished or parked". *)

val task_tid : task -> int

val task_name : task -> string

(** {1 Primitive building blocks used by the platform facades} *)

type mutex

type cond

val mutex : unit -> mutex

val cond : unit -> cond

val mutex_lock : mutex -> unit

val mutex_unlock : mutex -> unit

val mutex_try_lock : mutex -> bool
(** Deterministic non-blocking acquire: the attempt is itself a recorded
    scheduling point, so the outcome replays with the schedule. *)

val cond_wait : cond -> mutex -> unit

val cond_signal : cond -> unit

val cond_broadcast : cond -> unit

(** {1 Deterministic integer registers}

    The det face of the E25 primitive classes ([Sync_prims.Regs]): every
    access is a recorded scheduling point on a [Reg_o] object, so the
    class-restricted lock/semaphore algorithms — whose protocol steps
    {e are} register accesses — expose each interleaving to the
    exploration engines. *)

type reg

val reg : int -> reg
(** A fresh register with the given initial value. Create inside the
    run body (identities are per-run creation ordinals). *)

val reg_get : reg -> int

val reg_set : reg -> int -> unit

val reg_cas : reg -> int -> int -> bool
(** [reg_cas r seen v] installs [v] iff the value is [seen]; the attempt
    and its outcome are recorded. *)

val reg_faa : reg -> int -> int
(** Add and return the previous value. *)

val reg_await : watch:reg array -> (unit -> bool) -> unit
(** Deterministic level-triggered wait: parks the task until a write to
    a register in [watch] wakes it and the predicate holds. [pred] must
    only read registers in [watch]. Spinning is never recorded, so
    schedule trees stay finite, and a lost wakeup surfaces as a
    {!Deadlock} at the end of the run. *)
