(** The quantitative performance axis (E20).

    The paper stops at "serializers provide more mechanism ... at more
    cost"; this axis measures the cost. Each row is one recorded
    steady-state run of a registered solution under the multicore
    workload engine ([sync_workload]): closed-loop throughput plus the
    latency quantile ladder at a given domain count. Rows come either
    from a live {!measure} sweep (scorecard [--perf]) or from a recorded
    baseline's cells ({!of_cells} — the same data committed as
    [BENCH_E20.json]).

    Every target the workload engine can drive corresponds to an entry
    of {!Registry.all}; {!coverage_errors} machine-checks that claim. *)

type row = {
  mechanism : string;
  problem : string;
  variant : string;
  tier : string;  (** platform substrate: ["default"] or ["fast"] (E22) *)
  domains : int;
  throughput_per_s : float;
  p50_ns : int;
  p95_ns : int;
  p99_ns : int;
  p999_ns : int;
}

val row_of_cell : Sync_workload.Sweep.cell -> row

val of_cells : Sync_workload.Sweep.cell list -> row list

val measure :
  ?duration_ms:int -> ?warmup_ms:int -> ?domain_counts:int list ->
  ?mechanisms:string list -> ?problems:string list ->
  ?progress:(row -> unit) -> unit -> (row list, string) result
(** Run a live sweep. Defaults: steady window from [SYNC_LOAD_MS]
    (else 100 ms) after a 30 ms warmup, domain counts [1; 2; 4], the six
    full-coverage mechanisms, problems {bounded-buffer, readers-writers,
    fcfs}. *)

val coverage_errors : unit -> string list
(** For every (problem, mechanism) pair the workload engine offers,
    instantiate it and look its metadata up in {!Registry.all}; returns
    one message per pair that is {e not} a registered solution (must be
    empty — asserted by tests). *)

val pp : Format.formatter -> row list -> unit

val to_json : row list -> Sync_metrics.Emit.t
