type t = {
  ntracks : int;
  work : int;
  busy : bool Atomic.t;
  mutable pos : int;
  mutable travel : int;
  mutable count : int;
}

let create ?(work = 50) ~tracks () =
  assert (tracks >= 1);
  { ntracks = tracks; work; busy = Atomic.make false; pos = 0; travel = 0;
    count = 0 }

let tracks t = t.ntracks

let access t track =
  if track < 0 || track >= t.ntracks then
    invalid_arg "Disk.access: track out of range";
  if not (Atomic.compare_and_set t.busy false true) then
    raise (Busywork.Ill_synchronized "disk: concurrent accesses");
  t.travel <- t.travel + abs (track - t.pos);
  t.pos <- track;
  Busywork.spin t.work;
  t.count <- t.count + 1;
  Atomic.set t.busy false

let position t = t.pos

let travel t = t.travel

let accesses t = t.count
