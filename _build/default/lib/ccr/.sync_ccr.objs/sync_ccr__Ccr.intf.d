lib/ccr/ccr.mli:
