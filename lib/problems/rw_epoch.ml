(** Readers-writers on the epoch-based read-mostly path (E23).

    The "mechanism" here is the cache-conscious {!Sync_platform.Epochrw}
    lock itself: readers announce themselves in per-thread padded slots
    (two stores on a private line) and writers wait out a grace period
    after raising an intent flag. Exclusion holds — a writer proceeds
    only once every published reader has left, and readers that see the
    intent flag retreat — but no priority order beyond that is promised,
    so the variant is [none]. The point of carrying it in the registry
    is the scaling axis: the same readers-writers database whose other
    solutions serialize reader entry on one shared counter scales its
    read throughput with domain count here. *)

open Sync_taxonomy

module Read_mostly = struct
  type t = {
    rw : Sync_platform.Epochrw.t;
    res_read : pid:int -> int;
    res_write : pid:int -> unit;
  }

  let mechanism = "epoch"

  let policy = Rw_intf.No_priority

  let create ~read ~write =
    { rw = Sync_platform.Epochrw.create (); res_read = read; res_write = write }

  let read t ~pid =
    Sync_platform.Epochrw.with_read t.rw (fun () -> t.res_read ~pid)

  let write t ~pid =
    Sync_platform.Epochrw.with_write t.rw (fun () -> t.res_write ~pid)

  let stop _ = ()

  let meta =
    Meta.make ~mechanism ~problem:"readers-writers"
      ~variant:(Rw_intf.policy_to_string policy)
      ~fragments:
        [ ("rw-exclusion",
           [ "slot epoch odd while reading"; "wr intent flag";
             "grace: wait each odd slot to move"; "reader retreat on wr" ]);
          ("rw-priority", [ "none" ]) ]
      ~info_access:
        [ (Info.Request_type, Meta.Indirect); (Info.Sync_state, Meta.Indirect) ]
      ~aux_state:
        [ "per-thread epoch slots mirror the set of active readers";
          "wr flag mirrors writer intent" ]
      ~separation:Meta.Separated ()
end
