exception Unsupported of string

type wrapped = { prologue : unit -> unit; epilogue : unit -> unit }

type table = (string * wrapped list) list

(* Mutable accumulation: op -> wrapped list in reverse declaration order,
   plus per-declaration duplicate detection. *)
type acc = {
  tbl : (string, wrapped list) Hashtbl.t;
  mutable order : string list; (* first-appearance order, reversed *)
  mutable in_decl : string list; (* ops seen in the current declaration *)
}

let add acc name w =
  if List.mem name acc.in_decl then
    raise
      (Unsupported
         (Printf.sprintf
            "operation %S appears twice in one path declaration" name));
  acc.in_decl <- name :: acc.in_decl;
  (match Hashtbl.find_opt acc.tbl name with
  | None ->
    acc.order <- name :: acc.order;
    Hashtbl.add acc.tbl name [ w ]
  | Some ws -> Hashtbl.replace acc.tbl name (w :: ws))

let rec comp (engine : Engine.t) env acc e ~pro ~epi =
  match e with
  | Ast.Op name -> add acc name { prologue = pro; epilogue = epi }
  | Ast.Seq es ->
    let n = List.length es in
    let links = Array.init (n - 1) (fun _ -> engine.make_sem 0) in
    List.iteri
      (fun i e ->
        let pro = if i = 0 then pro else links.(i - 1).Engine.p in
        let epi = if i = n - 1 then epi else links.(i).Engine.v in
        comp engine env acc e ~pro ~epi)
      es
  | Ast.Sel es -> List.iter (fun e -> comp engine env acc e ~pro ~epi) es
  | Ast.Conc e ->
    let m = engine.make_sem 1 in
    let active = ref 0 in
    let pro' () =
      m.Engine.p ();
      incr active;
      if !active = 1 then pro ();
      m.Engine.v ()
    in
    let epi' () =
      m.Engine.p ();
      decr active;
      if !active = 0 then epi ();
      m.Engine.v ()
    in
    comp engine env acc e ~pro:pro' ~epi:epi'
  | Ast.Bounded _ ->
    raise
      (Unsupported
         "a numeric bound is only allowed as the entire body of a path \
          declaration")
  | Ast.Pred (name, e) -> (
    match engine.pred_gate with
    | None ->
      raise
        (Unsupported
           (Printf.sprintf
              "predicate [%s]: engine %S has no predicate support" name
              engine.name))
    | Some gate -> (
      match List.assoc_opt name env with
      | None ->
        raise (Unsupported (Printf.sprintf "unbound predicate %S" name))
      | Some f ->
        comp engine env acc e
          ~pro:(fun () ->
            gate f;
            pro ())
          ~epi))

let compile_decl engine env acc decl =
  acc.in_decl <- [];
  let bound, body =
    match decl with Ast.Bounded (n, e) -> (n, e) | e -> (1, e)
  in
  let s = engine.Engine.make_sem bound in
  comp engine env acc body ~pro:s.Engine.p ~epi:s.Engine.v

let compile ~engine ~env spec =
  let acc = { tbl = Hashtbl.create 16; order = []; in_decl = [] } in
  List.iter (compile_decl engine env acc) spec;
  List.rev_map
    (fun name -> (name, List.rev (Hashtbl.find acc.tbl name)))
    acc.order
