lib/eval/scorecard.mli: Conformance Expressiveness Format Independence Modularity Sync_taxonomy
