(* A tour of the path-expression engine.

   Parses and runs several specifications from the literature, showing
   what each permits and forbids, ending with the Andler-style predicate
   extension on the gate engine.

     dune exec examples/pathexpr_tour.exe
*)

module P = Sync_pathexpr.Pathexpr

let section title = Printf.printf "\n== %s ==\n%!" title

let () =
  section "one-slot buffer: path put ; get end";
  let slot = P.of_string "path put ; get end" in
  let log = ref [] in
  Sync_platform.Process.run_all ~backend:`Thread
    [ (fun () ->
        for i = 1 to 3 do
          P.run slot "put" (fun () -> log := Printf.sprintf "put %d" i :: !log)
        done);
      (fun () ->
        for i = 1 to 3 do
          P.run slot "get" (fun () -> log := Printf.sprintf "get %d" i :: !log)
        done) ];
  List.iter print_endline (List.rev !log);
  print_endline "(puts and gets alternated, enforced by the path alone)";

  section "readers-writers: path { read } , write end";
  let rw = P.of_string "path { read } , write end" in
  let active = Atomic.make 0 in
  let max_readers = Atomic.make 0 in
  let reader () =
    P.run rw "read" (fun () ->
        let n = 1 + Atomic.fetch_and_add active 1 in
        let rec bump () =
          let m = Atomic.get max_readers in
          if n > m && not (Atomic.compare_and_set max_readers m n) then bump ()
        in
        bump ();
        Thread.delay 0.01;
        ignore (Atomic.fetch_and_add active (-1)))
  in
  let writer () = P.run rw "write" (fun () -> Thread.delay 0.005) in
  Sync_platform.Process.run_all ~backend:`Thread
    [ reader; reader; reader; writer ];
  Printf.printf "max concurrent readers: %d (writer always alone)\n"
    (Atomic.get max_readers);

  section "bounded buffer: path 3 : (put ; get) end";
  let bb = P.of_string "path 3 : (put ; get) end  path put end  path get end" in
  P.run bb "put" ignore;
  P.run bb "put" ignore;
  P.run bb "put" ignore;
  print_endline "three puts accepted; a fourth would block until a get";
  P.run bb "get" ignore;
  P.run bb "put" ignore;
  print_endline "after one get, one more put fits";

  section "Figure 1 of the paper, parsed and printed back";
  let fig1 =
    Sync_pathexpr.Parser.parse
      "path writeattempt end \
       path { requestread } , requestwrite end \
       path { read } , (openwrite ; write) end"
  in
  print_endline (Sync_pathexpr.Ast.to_string fig1);

  section "Andler predicates (gate engine): path [door_open] enter end";
  let door = ref false in
  let sys =
    P.of_string ~engine:`Gate
      ~env:[ ("door_open", fun () -> !door) ]
      "path [door_open] enter end"
  in
  let entered = Atomic.make false in
  let visitor =
    Sync_platform.Process.spawn ~backend:`Thread (fun () ->
        P.run sys "enter" (fun () -> Atomic.set entered true))
  in
  Thread.delay 0.05;
  Printf.printf "door closed: visitor entered = %b\n%!" (Atomic.get entered);
  door := true;
  (* Any completed operation pokes the predicate gates; open the door and
     step through once ourselves. *)
  P.run sys "enter" ignore;
  Sync_platform.Process.join visitor;
  Printf.printf "door open:   visitor entered = %b\n%!" (Atomic.get entered)
