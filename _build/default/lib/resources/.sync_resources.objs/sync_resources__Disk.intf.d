lib/resources/disk.mli:
