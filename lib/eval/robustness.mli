(** The robustness axis (E19): each mechanism x {bounded buffer,
    readers-priority readers-writers, FCFS} under injected aborts (real
    threads, deterministic fault plans) and cancellation/timeout storms
    (deterministic runtime: seeded random schedules plus one
    bounded-exhaustive DFS instance), with the existing trace checkers as
    the post-fault invariant. Also covers the platform's timed waits
    (mutex/semaphore/condition) under timeout storms. *)

type row = {
  mechanism : string;
  problem : string;
  scenario : string;  (** ["aborts"] or ["storm"] *)
  policy : string;  (** the mechanism's declared abort policy *)
  runs : int;
  recovered : int;  (** runs whose post-fault invariants all held *)
  detail : string;  (** first failure, or a summary when clean *)
}

val run : ?storm_runs:int -> ?progress:(row -> unit) -> unit -> row list
(** Executes the full matrix. [storm_runs] (default 8) random-schedule
    seeds per storm scenario; the DFS instance is always explored up to
    its internal bounds. [progress] is called with each row as it
    completes (the matrix takes a while; default ignores). Deterministic: fault plans are seeded and the
    storm schedules derive from consecutive seeds, so a failing row's
    [detail] names the seed (or DFS schedule) that replays it. *)

val all_recovered : row list -> bool

val pp : Format.formatter -> row list -> unit
