test/test_serializer.ml: Alcotest Atomic List Serializer Sync_platform Sync_serializer Testutil Thread
