(* The hot half of the observability layer: a global static flag and
   per-thread ring buffers.

   Contention design mirrors [Sync_metrics.Recorder]: share-nothing. Each
   OS thread (workers are threads or domain mains) records into its own
   ring buffer, found by an indexed slot keyed on the thread id; buffers
   are snapshotted after the traced region quiesces. The ring is a
   struct-of-arrays so one event is a handful of scalar stores into
   preallocated arrays — no per-event allocation.

   Disabled cost is the whole game: every probe entry point reads one
   atomic flag and returns. No closure is built, no optional argument is
   boxed, no clock is read, nothing is allocated — verified by the
   Gc-stat test in test_trace and the A/B cell in bench_load. *)

type kind =
  | Acquire   (* span: blocked entering a lock / region / possession *)
  | Hold      (* span: a lock, monitor or possession was held *)
  | Wait      (* span: parked on a queue or condition; arg = queue depth *)
  | Op        (* span: one mechanism-level operation *)
  | Signal    (* instant: a wake was issued; arg = waiters present *)
  | Handoff   (* instant: grant handed directly to a waiter; arg = left *)
  | Abandon   (* instant: a timed wait gave up; arg = ns spent waiting *)
  | Spurious  (* instant: woken with the awaited predicate still false *)
  | Flip      (* instant: a site changed tier; arg = new tier index *)

let kind_to_string = function
  | Acquire -> "acquire"
  | Hold -> "hold"
  | Wait -> "wait"
  | Op -> "op"
  | Signal -> "signal"
  | Handoff -> "handoff"
  | Abandon -> "abandon"
  | Spurious -> "spurious"
  | Flip -> "flip"

let is_span = function
  | Acquire | Hold | Wait | Op -> true
  | Signal | Handoff | Abandon | Spurious | Flip -> false

let kind_index = function
  | Acquire -> 0
  | Hold -> 1
  | Wait -> 2
  | Op -> 3
  | Signal -> 4
  | Handoff -> 5
  | Abandon -> 6
  | Spurious -> 7
  | Flip -> 8

let kind_of_index =
  [| Acquire; Hold; Wait; Op; Signal; Handoff; Abandon; Spurious; Flip |]

(* The static flag. A single atomic load guards every probe; [enabled]
   is the first thing each entry point checks, before any allocation. *)
let enabled_flag = Atomic.make false

let enabled () = Atomic.get enabled_flag

let enable () = Atomic.set enabled_flag true

let disable () = Atomic.set enabled_flag false

let default_capacity = 65_536

let capacity = ref default_capacity

let set_capacity n =
  if n < 2 then invalid_arg "Probe.set_capacity: need at least 2 slots";
  capacity := n

(* Per-thread ring buffer. Only the owning thread writes; [pos] counts
   every event ever written, so [pos - cap] events have been overwritten
   once the ring wraps.

   [pos] is atomic so a concurrent reader (the adaptive sampler) can use
   it as a sequence lock: the owning thread fills every slot field and
   only then publishes with an [Atomic.set] (a release on OCaml's SC
   atomics), so any event below the published count is fully written.
   The single uncontended atomic store costs the same as a plain store
   on the recording path, keeping the disabled/enabled cost claims. *)
type buffer = {
  btid : int;
  cap : int;
  bkind : int array;
  bsite : string array;
  bop : string array;
  bt0 : int array;
  bdur : int array;
  barg : int array;
  bactor : int array;
  mutable bop_cur : string;
  pos : int Atomic.t;
}

let make_buffer tid =
  let cap = !capacity in
  { btid = tid; cap;
    bkind = Array.make cap 0;
    bsite = Array.make cap "";
    bop = Array.make cap "";
    bt0 = Array.make cap 0;
    bdur = Array.make cap 0;
    barg = Array.make cap 0;
    bactor = Array.make cap 0;
    bop_cur = ""; pos = Atomic.make 0 }

(* Buffer lookup: a fixed array of atomic slots indexed by thread id.
   The slot is re-verified against the owner's id, so a (rare) index
   collision allocates a fresh buffer for the newcomer instead of
   sharing; the displaced buffer stays reachable through [registry]. *)
let slot_count = 256

let slots =
  Array.init slot_count (fun _ -> Atomic.make (None : buffer option))

let registry_lock = Stdlib.Mutex.create ()

let registry : buffer list ref = ref []

let my_buffer () =
  let tid = Thread.id (Thread.self ()) in
  let slot = slots.(tid land (slot_count - 1)) in
  match Atomic.get slot with
  | Some b when b.btid = tid -> b
  | _ ->
    let b = make_buffer tid in
    Stdlib.Mutex.lock registry_lock;
    registry := b :: !registry;
    Stdlib.Mutex.unlock registry_lock;
    Atomic.set slot (Some b);
    b

(* Actor ids: the OS thread id normally; inside a deterministic run the
   virtual task id, reported by the runtime through the same provider
   pattern Fault/Deadlock use. Virtual actors are encoded negative so a
   timeline can tell the two worlds apart. *)
let task_provider : (unit -> int option) ref = ref (fun () -> None)

let set_task_provider f = task_provider := f

let current_actor b =
  match !task_provider () with Some vt -> -(vt + 1) | None -> b.btid

let now_ns () = Int64.to_int (Monotonic_clock.now ())

let now () = if enabled () then now_ns () else 0

let write b k ~site ~t0 ~dur ~arg =
  let p = Atomic.get b.pos in
  let i = p mod b.cap in
  b.bkind.(i) <- kind_index k;
  b.bsite.(i) <- site;
  b.bop.(i) <- b.bop_cur;
  b.bt0.(i) <- t0;
  b.bdur.(i) <- dur;
  b.barg.(i) <- arg;
  b.bactor.(i) <- current_actor b;
  (* Publish: slot stores above happen-before this release store. *)
  Atomic.set b.pos (p + 1)

let span k ~site ~since ~arg =
  if enabled () && since <> 0 then begin
    let b = my_buffer () in
    write b k ~site ~t0:since ~dur:(now_ns () - since) ~arg
  end

let instant k ~site ~arg =
  if enabled () then begin
    let b = my_buffer () in
    write b k ~site ~t0:(now_ns ()) ~dur:0 ~arg
  end

let set_op name = if enabled () then (my_buffer ()).bop_cur <- name

let reset () =
  Stdlib.Mutex.lock registry_lock;
  registry := [];
  Stdlib.Mutex.unlock registry_lock;
  Array.iter (fun s -> Atomic.set s None) slots

(* -- snapshots ----------------------------------------------------- *)

type event = {
  t0 : int;
  dur : int;
  kind : kind;
  site : string;
  op : string;
  actor : int;
  arg : int;
}

let buffer_events b =
  let pos = Atomic.get b.pos in
  let n = min pos b.cap in
  let start = pos - n in
  List.init n (fun j ->
      let i = (start + j) mod b.cap in
      { t0 = b.bt0.(i); dur = b.bdur.(i);
        kind = kind_of_index.(b.bkind.(i));
        site = b.bsite.(i); op = b.bop.(i);
        actor = b.bactor.(i); arg = b.barg.(i) })

(* Consistent read while the owner keeps writing (the sampler path).
   [p0] is read before copying the slot arrays and [p1] after: any slot
   the owner touched during the copy belongs to an event numbered in
   [p0, p1), which overwrote the event numbered cap earlier. Events in
   [max(0, p1 - cap), p0) were therefore fully published before the copy
   began and untouched during it — no torn slot can leak out. If the
   owner laps the reader by a full ring during the copy the window is
   empty and we retry (bounded; in practice one pass suffices). *)
let live_buffer_events b =
  let rec attempt tries =
    let p0 = Atomic.get b.pos in
    let bkind = Array.copy b.bkind in
    let bsite = Array.copy b.bsite in
    let bop = Array.copy b.bop in
    let bt0 = Array.copy b.bt0 in
    let bdur = Array.copy b.bdur in
    let barg = Array.copy b.barg in
    let bactor = Array.copy b.bactor in
    let p1 = Atomic.get b.pos in
    let lo = max 0 (p1 - b.cap) in
    if lo >= p0 && p0 > 0 && tries < 8 then attempt (tries + 1)
    else
      List.init (max 0 (p0 - lo)) (fun j ->
          let i = (lo + j) mod b.cap in
          { t0 = bt0.(i); dur = bdur.(i);
            kind = kind_of_index.(bkind.(i));
            site = bsite.(i); op = bop.(i);
            actor = bactor.(i); arg = barg.(i) })
  in
  attempt 0

(* Incremental sampler read: only the events a cursor has not seen.
   Same seqlock reasoning as [live_buffer_events], but the copy is
   bounded by the number of new events, so a periodic sampler's cost is
   proportional to recording activity, not to ring capacity — a sampler
   re-copying a 65k-slot ring every few milliseconds is itself enough
   allocation pressure to perturb the run it is observing. *)
let live_buffer_events_from b ~from =
  let rec attempt tries =
    let p0 = Atomic.get b.pos in
    let lo = max from (max 0 (p0 - b.cap)) in
    let n = p0 - lo in
    if n <= 0 then ([], p0)
    else begin
      let kinds = Array.make n 0 in
      let sites = Array.make n "" in
      let ops = Array.make n "" in
      let t0s = Array.make n 0 in
      let durs = Array.make n 0 in
      let args = Array.make n 0 in
      let actors = Array.make n 0 in
      for j = 0 to n - 1 do
        let i = (lo + j) mod b.cap in
        kinds.(j) <- b.bkind.(i);
        sites.(j) <- b.bsite.(i);
        ops.(j) <- b.bop.(i);
        t0s.(j) <- b.bt0.(i);
        durs.(j) <- b.bdur.(i);
        args.(j) <- b.barg.(i);
        actors.(j) <- b.bactor.(i)
      done;
      let p1 = Atomic.get b.pos in
      let lo' = max lo (p1 - b.cap) in
      if lo' >= p0 && tries < 8 then attempt (tries + 1)
      else
        ( List.init (max 0 (p0 - lo')) (fun j ->
              let j = j + (lo' - lo) in
              { t0 = t0s.(j); dur = durs.(j);
                kind = kind_of_index.(kinds.(j));
                site = sites.(j); op = ops.(j);
                actor = actors.(j); arg = args.(j) }),
          p0 )
    end
  in
  attempt 0

let buffers () =
  Stdlib.Mutex.lock registry_lock;
  let bs = !registry in
  Stdlib.Mutex.unlock registry_lock;
  bs

let sort_events evs =
  List.sort
    (fun a b ->
      match compare a.t0 b.t0 with 0 -> compare b.dur a.dur | c -> c)
    evs

let snapshot () = buffers () |> List.concat_map buffer_events |> sort_events

let live_snapshot () =
  buffers () |> List.concat_map live_buffer_events |> sort_events

type cursor = (buffer * int) list

let start_cursor : cursor = []

let live_read cur =
  let pairs =
    List.map
      (fun b ->
        let from = try List.assq b cur with Not_found -> 0 in
        let evs, next = live_buffer_events_from b ~from in
        (evs, (b, next)))
      (buffers ())
  in
  (List.concat_map fst pairs |> sort_events, List.map snd pairs)

let total () =
  List.fold_left (fun acc b -> acc + Atomic.get b.pos) 0 (buffers ())

let dropped () =
  List.fold_left
    (fun acc b -> acc + max 0 (Atomic.get b.pos - b.cap))
    0 (buffers ())

let with_tracing f =
  reset ();
  enable ();
  match f () with
  | v ->
    disable ();
    let evs = snapshot () in
    (v, evs)
  | exception e ->
    disable ();
    raise e

let actor_label a =
  if a < 0 then Printf.sprintf "v%d" (-a - 1) else Printf.sprintf "t%d" a
