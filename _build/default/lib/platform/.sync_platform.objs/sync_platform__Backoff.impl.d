lib/platform/backoff.ml: Domain Thread
