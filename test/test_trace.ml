(* The E21 trace layer's own guarantees: ring wraparound accounting,
   share-nothing recording under concurrent domain writers, the
   zero-allocation disabled path, and the Chrome exporter's JSON staying
   parseable whatever ends up in a site or operation label. *)

module Probe = Sync_trace.Probe
module Profile = Sync_trace.Profile
module Chrome = Sync_trace.Chrome
module Emit = Sync_metrics.Emit

(* Every test runs against the same global probe state; keep each one
   self-contained. *)
let scrubbed f () =
  Probe.disable ();
  Probe.reset ();
  Probe.set_capacity 65536;
  Fun.protect ~finally:(fun () ->
      Probe.disable ();
      Probe.reset ();
      Probe.set_capacity 65536)
    f

let emit n =
  for i = 1 to n do
    Probe.instant Signal ~site:"test" ~arg:i
  done

(* --- ring buffer ------------------------------------------------- *)

let test_wraparound () =
  Probe.set_capacity 16;
  Probe.reset ();
  Probe.enable ();
  emit 40;
  Probe.disable ();
  let events = Probe.snapshot () in
  Alcotest.(check int) "ring retains capacity" 16 (List.length events);
  Alcotest.(check int) "total counts every record" 40 (Probe.total ());
  Alcotest.(check int) "dropped counts overwrites" 24 (Probe.dropped ());
  (* Oldest events were the ones overwritten: the survivors are the tail. *)
  let args = List.map (fun (e : Probe.event) -> e.Probe.arg) events in
  List.iter
    (fun a -> Alcotest.(check bool) "survivor is recent" true (a > 24))
    args

let test_no_wrap () =
  Probe.set_capacity 64;
  Probe.reset ();
  Probe.enable ();
  emit 10;
  Probe.disable ();
  Alcotest.(check int) "all retained" 10 (List.length (Probe.snapshot ()));
  Alcotest.(check int) "nothing dropped" 0 (Probe.dropped ())

let test_reset_clears () =
  Probe.enable ();
  emit 5;
  Probe.disable ();
  Probe.reset ();
  Alcotest.(check int) "snapshot empty" 0 (List.length (Probe.snapshot ()));
  Alcotest.(check int) "total zero" 0 (Probe.total ());
  Alcotest.(check int) "dropped zero" 0 (Probe.dropped ())

(* --- concurrent writers ------------------------------------------ *)

let test_domain_writers () =
  let writers = 4 and per_writer = 5000 in
  Probe.reset ();
  Probe.enable ();
  let doms =
    List.init writers (fun w ->
        Domain.spawn (fun () ->
            for i = 1 to per_writer do
              Probe.instant Signal ~site:"dom" ~arg:((w * per_writer) + i)
            done))
  in
  List.iter Domain.join doms;
  Probe.disable ();
  let events = Probe.snapshot () in
  Alcotest.(check int) "every event retained"
    (writers * per_writer)
    (List.length events);
  Alcotest.(check int) "no drops below capacity" 0 (Probe.dropped ());
  (* Share-nothing rings: each writer's own events must survive in full
     and carry its distinct actor id. *)
  let module S = Set.Make (Int) in
  let actors =
    S.elements
      (List.fold_left
         (fun s (e : Probe.event) -> S.add e.Probe.actor s)
         S.empty events)
  in
  Alcotest.(check int) "one actor per writer" writers (List.length actors);
  let args = List.map (fun (e : Probe.event) -> e.Probe.arg) events in
  let distinct = S.cardinal (S.of_list args) in
  Alcotest.(check int) "no event lost or duplicated"
    (writers * per_writer)
    distinct

(* The seqlock read path under fire (the E27 sampler's): four domains
   write flat out while the main thread drains [live_read]
   incrementally through a cursor. A torn slot would surface as an
   event whose fields disagree — every writer stamps its index into
   both the site and the argument — and each ring must deliver its
   events in order, without loss or duplication (nothing wraps here:
   per-writer volume stays under the ring capacity). *)
let test_live_read_hammer () =
  let writers = 4 and per_writer = 50_000 in
  Probe.reset ();
  Probe.enable ();
  let sites = Array.init writers (fun w -> Printf.sprintf "hammer-%d" w) in
  let running = Atomic.make writers in
  let doms =
    List.init writers (fun w ->
        Domain.spawn (fun () ->
            for i = 1 to per_writer do
              Probe.instant Signal ~site:sites.(w) ~arg:((w * 1_000_000) + i)
            done;
            Atomic.decr running))
  in
  let seen = Array.make writers [] (* consumed args per writer, newest first *)
  and torn = ref 0
  and cursor = ref Probe.start_cursor in
  let consume () =
    let events, next = Probe.live_read !cursor in
    cursor := next;
    List.iter
      (fun (e : Probe.event) ->
        if e.Probe.kind = Probe.Signal then begin
          let w = e.Probe.arg / 1_000_000 in
          if w < 0 || w >= writers || not (String.equal e.Probe.site sites.(w))
          then incr torn
          else seen.(w) <- (e.Probe.arg mod 1_000_000) :: seen.(w)
        end)
      events
  in
  while Atomic.get running > 0 do
    consume ();
    Domain.cpu_relax ()
  done;
  List.iter Domain.join doms;
  consume ();
  Probe.disable ();
  Alcotest.(check int) "no torn slot" 0 !torn;
  Array.iteri
    (fun w l ->
      let l = List.rev l in
      Alcotest.(check int)
        (Printf.sprintf "writer %d delivered in full" w)
        per_writer (List.length l);
      ignore
        (List.fold_left
           (fun prev a ->
             if a <= prev then
               Alcotest.failf "writer %d: arg %d delivered after %d" w a prev;
             a)
           0 l))
    seen

(* --- disabled path ----------------------------------------------- *)

let test_disabled_no_alloc () =
  Probe.disable ();
  Probe.reset ();
  (* Warm up so any one-time setup is paid before measuring. *)
  for _ = 1 to 100 do
    let t0 = Probe.now () in
    Probe.span Hold ~site:"gc" ~since:t0 ~arg:0;
    Probe.instant Signal ~site:"gc" ~arg:0
  done;
  let before = Gc.minor_words () in
  for _ = 1 to 100_000 do
    let t0 = Probe.now () in
    Probe.span Hold ~site:"gc" ~since:t0 ~arg:0;
    Probe.instant Signal ~site:"gc" ~arg:0;
    if Probe.enabled () then Probe.instant Spurious ~site:"gc" ~arg:0
  done;
  let allocated = Gc.minor_words () -. before in
  (* 300k probe calls; the budget tolerates instrumentation noise but
     catches any per-call allocation (which would be >= 2 words each). *)
  Alcotest.(check bool)
    (Printf.sprintf "disabled probes allocate nothing (got %.0f words)"
       allocated)
    true (allocated < 1000.0);
  Alcotest.(check int) "nothing recorded" 0 (Probe.total ())

let test_disabled_now_is_zero () =
  Probe.disable ();
  Alcotest.(check int) "now() is the no-op token" 0 (Probe.now ());
  Probe.enable ();
  let t = Probe.now () in
  Probe.disable ();
  Alcotest.(check bool) "now() real when enabled" true (t > 0)

let test_span_since_zero_ignored () =
  Probe.reset ();
  Probe.enable ();
  Probe.span Hold ~site:"zero" ~since:0 ~arg:0;
  Probe.disable ();
  Alcotest.(check int) "since:0 spans are dropped" 0 (Probe.total ())

(* --- chrome export / JSON escaping ------------------------------- *)

let hostile = "we\"ird\\site\nwith\ttabs & unicode \xe2\x9c\x93 \x01ctl"

let test_chrome_escaping () =
  Probe.reset ();
  Probe.enable ();
  Probe.set_op hostile;
  Probe.instant Signal ~site:hostile ~arg:1;
  let t0 = Probe.now () in
  Probe.span Hold ~site:hostile ~since:t0 ~arg:2;
  Probe.disable ();
  let events = Probe.snapshot () in
  Alcotest.(check int) "both events recorded" 2 (List.length events);
  let json = Chrome.to_json [ ("group \"A\"\n", events) ] in
  let text = Emit.to_string json in
  (* The exporter's output must round-trip through a JSON parser with
     the hostile strings intact. *)
  let doc = Emit.parse text in
  let rec strings acc = function
    | Emit.Str s -> s :: acc
    | Emit.List xs -> List.fold_left strings acc xs
    | Emit.Obj fields ->
      List.fold_left (fun acc (_, v) -> strings acc v) acc fields
    | _ -> acc
  in
  let all = strings [] doc in
  Alcotest.(check bool) "hostile site survives round-trip" true
    (List.exists (fun s -> s = hostile) all);
  match Emit.member "traceEvents" doc with
  | Some (Emit.List evs) ->
    Alcotest.(check bool) "trace has events" true (List.length evs > 0)
  | _ -> Alcotest.fail "no traceEvents array"

let test_parse_unicode_escape () =
  (match Emit.parse "\"a\\u00e9\\u2713b\\u0041\"" with
  | Emit.Str s -> Alcotest.(check string) "decoded utf-8" "a\xc3\xa9\xe2\x9c\x93bA" s
  | _ -> Alcotest.fail "expected string");
  match Emit.parse "{\"k\\\"ey\": [1, 2.5, true, null]}" with
  | Emit.Obj [ ("k\"ey", Emit.List [ Emit.Int 1; Emit.Float f; Emit.Bool true; Emit.Null ]) ]
    ->
    Alcotest.(check (float 0.0001)) "float" 2.5 f
  | _ -> Alcotest.fail "structure mismatch"

(* --- profile aggregation ----------------------------------------- *)

let test_profile_aggregation () =
  Probe.reset ();
  Probe.enable ();
  let t0 = Probe.now () in
  Probe.span Hold ~site:"m" ~since:t0 ~arg:0;
  let t1 = Probe.now () in
  Probe.span Hold ~site:"m" ~since:t1 ~arg:0;
  let t2 = Probe.now () in
  Probe.span Wait ~site:"q" ~since:t2 ~arg:3;
  Probe.instant Signal ~site:"q" ~arg:2;
  Probe.instant Handoff ~site:"q" ~arg:1;
  Probe.instant Spurious ~site:"q" ~arg:0;
  Probe.instant Abandon ~site:"q" ~arg:77;
  Probe.disable ();
  let p = Profile.of_events ~dropped:0 (Probe.snapshot ()) in
  (match Profile.find_row p ~site:"m" ~kind:Probe.Hold with
  | Some row ->
    Alcotest.(check int) "two hold spans on m" 2 row.Profile.count
  | None -> Alcotest.fail "missing m/Hold row");
  (match Profile.find_row p ~site:"q" ~kind:Probe.Wait with
  | Some row -> Alcotest.(check int) "one wait span on q" 1 row.Profile.count
  | None -> Alcotest.fail "missing q/Wait row");
  let w = p.Profile.wake in
  Alcotest.(check int) "signals" 1 w.Profile.signals;
  Alcotest.(check int) "handoffs" 1 w.Profile.handoffs;
  Alcotest.(check int) "spurious" 1 w.Profile.spurious;
  Alcotest.(check int) "abandoned" 1 w.Profile.abandoned;
  Alcotest.(check int) "max queue depth from wait args" 3 w.Profile.max_queue

(* A successful try_lock is a zero-wait acquire: it must show up in
   profiled acquire counts (the E22 observability satellite), and the
   eventual unlock must close the hold span it opened. Covered on both
   substrate tiers, since each has its own try_lock path. *)
let test_try_lock_emits_acquire () =
  let check_tier label mk =
    Probe.reset ();
    Probe.enable ();
    let m = mk () in
    Alcotest.(check bool) (label ^ ": acquired") true
      (Sync_platform.Mutex.try_lock m);
    Sync_platform.Mutex.unlock m;
    Probe.disable ();
    let p = Profile.of_events ~dropped:0 (Probe.snapshot ()) in
    (match Profile.find_row p ~site:"mutex" ~kind:Probe.Acquire with
    | Some row ->
      Alcotest.(check int) (label ^ ": one acquire span") 1 row.Profile.count
    | None -> Alcotest.failf "%s: try_lock emitted no Acquire span" label);
    match Profile.find_row p ~site:"mutex" ~kind:Probe.Hold with
    | Some row ->
      Alcotest.(check int) (label ^ ": one hold span") 1 row.Profile.count
    | None -> Alcotest.failf "%s: unlock emitted no Hold span" label
  in
  check_tier "default" (fun () -> Sync_platform.Mutex.create ());
  check_tier "fast" (fun () ->
      Sync_platform.Fastpath.with_enabled (fun () ->
          Sync_platform.Mutex.create ()))

(* --- end to end: a traced load run ------------------------------- *)

let test_traced_monitor_load () =
  match
    Sync_workload.Target.create ~problem:"bounded-buffer" ~mechanism:"monitor"
      ()
  with
  | Error e -> Alcotest.fail e
  | Ok instance ->
    let cfg =
      { Sync_workload.Loadgen.default_config with
        Sync_workload.Loadgen.workers = 3;
        backend = `Thread;
        duration_ms = 30;
        warmup_ms = 5 }
    in
    let report, events =
      Probe.with_tracing (fun () ->
          Sync_workload.Loadgen.run instance cfg)
    in
    let s = report.Sync_workload.Report.summary in
    Alcotest.(check int) "no self-check failures" 0
      s.Sync_metrics.Summary.total_failures;
    Alcotest.(check bool) "trace captured events" true (events <> []);
    let has k =
      List.exists (fun (e : Probe.event) -> e.Probe.kind = k) events
    in
    Alcotest.(check bool) "op spans present" true (has Probe.Op);
    Alcotest.(check bool) "monitor hold spans present" true
      (List.exists
         (fun (e : Probe.event) ->
           e.Probe.kind = Probe.Hold && e.Probe.site = "monitor")
         events);
    Alcotest.(check bool) "wake instants present" true
      (has Probe.Signal || has Probe.Handoff);
    (* Op labels stamped by the load engine reach the events. *)
    Alcotest.(check bool) "op labels stamped" true
      (List.exists (fun (e : Probe.event) -> e.Probe.op <> "") events)

let test_actor_label () =
  Alcotest.(check string) "thread label" "t12" (Probe.actor_label 12);
  Alcotest.(check string) "virtual label" "v3" (Probe.actor_label (-4))

let () =
  Alcotest.run "trace"
    [ ( "ring",
        [ Alcotest.test_case "wraparound" `Quick (scrubbed test_wraparound);
          Alcotest.test_case "no-wrap" `Quick (scrubbed test_no_wrap);
          Alcotest.test_case "reset" `Quick (scrubbed test_reset_clears) ] );
      ( "concurrency",
        [ Alcotest.test_case "domain-writers" `Quick
            (scrubbed test_domain_writers);
          Alcotest.test_case "live-read hammer" `Quick
            (scrubbed test_live_read_hammer) ] );
      ( "disabled",
        [ Alcotest.test_case "zero-allocation" `Quick
            (scrubbed test_disabled_no_alloc);
          Alcotest.test_case "now-token" `Quick
            (scrubbed test_disabled_now_is_zero);
          Alcotest.test_case "since-zero" `Quick
            (scrubbed test_span_since_zero_ignored) ] );
      ( "export",
        [ Alcotest.test_case "chrome-escaping" `Quick
            (scrubbed test_chrome_escaping);
          Alcotest.test_case "parse-unicode" `Quick
            (scrubbed test_parse_unicode_escape) ] );
      ( "profile",
        [ Alcotest.test_case "try-lock-acquire-span" `Quick
            (scrubbed test_try_lock_emits_acquire);
          Alcotest.test_case "aggregation" `Quick
            (scrubbed test_profile_aggregation) ] );
      ( "load",
        [ Alcotest.test_case "traced-monitor-run" `Quick
            (scrubbed test_traced_monitor_load);
          Alcotest.test_case "actor-labels" `Quick (scrubbed test_actor_label) ]
      ) ]
