(** The disk-head scheduler problem (request-parameter information), after
    Hoare'74's monitor paper.

    Processes request access to a track; the scheduler grants exclusive
    access in {e elevator (SCAN)} order: while sweeping up, the pending
    request with the nearest higher track is served next; when none
    remain, the sweep reverses. The priority constraint is conditioned on
    the {b argument} of the request — the information category monitors
    serve with priority-queue condition waits and that classic path
    expressions cannot reach at all. *)

open Sync_taxonomy

let spec =
  Spec.make ~name:"disk-scheduler"
    ~description:
      "grant exclusive disk access in elevator order over requested tracks"
    ~ops:[ "access" ]
    ~constraints:
      [ Constr.make ~id:"disk-exclusion" ~cls:Constr.Exclusion
          ~info:[ Info.Sync_state ]
          ~description:"if an access is in progress then exclude all";
        Constr.make ~id:"disk-scan-order" ~cls:Constr.Priority
          ~info:[ Info.Parameters ]
          ~description:
            "if A's track is nearer in the current sweep direction than \
             B's then A has priority over B" ]

module type S = sig
  type t

  val mechanism : string

  val create : tracks:int -> access:(pid:int -> int -> unit) -> t
  (** [access pid track] is the instrumented resource operation; the
      solution must call it under exclusion, in SCAN order. *)

  val access : t -> pid:int -> int -> unit

  val stop : t -> unit

  val meta : Meta.t
end
