(** Client side of the bloom_serve protocol: one blocking connection
    plus the backoff policy the E24 drivers share.

    Every {!request} stamps the connection's receive timeout from the
    request's deadline budget (plus slack), so a reply lost to chaos or
    a crashed server surfaces as a typed [`Timeout] — the client-side
    mirror of the server's deadline propagation; a client can never
    hang on a dead or lossy connection. *)

type t

val connect : Unix.sockaddr -> (t, string) result

val fd : t -> Unix.file_descr

type error =
  [ `Closed  (** EOF / reset — the server hung up or died *)
  | `Timeout  (** no reply within the deadline budget + slack *)
  | `Fail of string  (** connection-level failure or undecodable reply *)
  ]

val error_to_string : error -> string

val request : t -> deadline_ns:int64 -> Wire.req -> (Wire.reply, error) result
(** Send one request and wait for its reply. After any [Error] the
    connection must be {!close}d (the stream may be desynchronized). *)

val close : t -> unit

val backoff_ms :
  rng:Sync_platform.Prng.t -> attempt:int -> base_ms:int -> cap_ms:int -> int
(** Capped exponential backoff with full jitter: uniform in
    [\[1, min (cap_ms, base_ms * 2^attempt)\]]. [attempt] counts from
    0. The standard anti-thundering-herd retry delay for
    [Overloaded]/reset outcomes (AWS-style full jitter). *)
