(** Concrete syntax for path expressions.

    {v
    spec     ::= pathdecl+
    pathdecl ::= "path" expr "end"
    expr     ::= sel (";" sel)*            (sequence, loosest)
    sel      ::= primary ("," primary)*    (selection)
    primary  ::= ident
               | "{" expr "}"              (concurrency)
               | "(" expr ")"
               | int ":" "(" expr ")"      (numeric bound)
               | "[" ident "]" primary     (predicate guard)
    v}

    Identifiers are [\[A-Za-z_\]\[A-Za-z0-9_\]*]; whitespace separates
    tokens; [--] starts a comment to end of line. *)

exception Syntax_error of string
(** Raised with a human-readable position + expectation message. *)

val parse : string -> Ast.spec
(** @raise Syntax_error on malformed input. *)

val parse_expr : string -> Ast.t
(** Parse a single path body (no [path]/[end] keywords); for tests. *)
