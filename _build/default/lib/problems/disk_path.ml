(** Disk-head scheduling with path expressions — by synchronization
    procedures, because the paper's conclusion for this information
    category is blunt: "there is obviously no way to use parameter values
    in paths".

    The path layer contributes only mutual exclusion over the scheduler
    bookkeeping ([path enterq , leaveq end] — a selection of two gate
    procedures per cycle is exactly a mutex). Everything the problem is
    actually about — the pending heaps, the sweep, the per-request
    private gates — lives in ordinary code invoked from those gate
    procedures, i.e. the resource module and the synchronization are
    thoroughly blended. *)

open Sync_platform
open Sync_taxonomy
module P = Sync_pathexpr.Pathexpr

type direction = Up | Down

type waiting = { dest : int; gate : Semaphore.Binary.t }

type t = {
  sys : P.t; (* path enterq , leaveq end *)
  upq : waiting Heap.t;
  downq : waiting Heap.t;
  mutable headpos : int;
  mutable direction : direction;
  mutable busy : bool;
  res_access : pid:int -> int -> unit;
}

let mechanism = "pathexpr"

let paths = "path enterq , leaveq end"

let create ~tracks ~access =
  ignore tracks;
  { sys = P.of_string paths;
    upq = Heap.create ~cmp:(fun a b -> compare a.dest b.dest) ();
    downq = Heap.create ~cmp:(fun a b -> compare b.dest a.dest) ();
    headpos = 0; direction = Up; busy = false; res_access = access }

(* Synchronization procedure: runs under the path's exclusion and decides
   whether the caller may proceed or must wait on a private gate. *)
let enterq t dest =
  P.run t.sys "enterq" (fun () ->
      if not t.busy then begin
        t.busy <- true;
        t.headpos <- dest;
        None
      end
      else begin
        let w = { dest; gate = Semaphore.Binary.create false } in
        if t.headpos < dest || (t.headpos = dest && t.direction = Up) then
          Heap.push t.upq w
        else Heap.push t.downq w;
        Some w.gate
      end)

let leaveq t =
  P.run t.sys "leaveq" (fun () ->
      let next =
        match t.direction with
        | Up -> (
          match Heap.pop t.upq with
          | Some w -> Some w
          | None ->
            t.direction <- Down;
            Heap.pop t.downq)
        | Down -> (
          match Heap.pop t.downq with
          | Some w -> Some w
          | None ->
            t.direction <- Up;
            Heap.pop t.upq)
      in
      match next with
      | Some w ->
        t.headpos <- w.dest;
        Semaphore.Binary.v w.gate
      | None -> t.busy <- false)

let access t ~pid track =
  (match enterq t track with
  | None -> ()
  | Some gate -> Semaphore.Binary.p gate);
  Fun.protect
    ~finally:(fun () -> leaveq t)
    (fun () -> t.res_access ~pid track)

let stop _ = ()

let meta =
  Meta.make ~mechanism ~problem:"disk-scheduler"
    ~fragments:
      [ ("disk-exclusion",
         [ "path"; "enterq,leaveq"; "end"; "private"; "gate" ]);
        ("disk-scan-order",
         [ "upq"; "downq"; "heaps"; "dispatch-in-leaveq"; "headpos";
           "direction" ]) ]
    ~info_access:
      [ (Info.Parameters, Meta.Unsupported); (Info.Sync_state, Meta.Indirect) ]
    ~aux_state:
      [ "pending-request heaps ordered by track";
        "private gate per waiting request"; "headpos"; "direction";
        "busy flag" ]
    ~sync_procedures:[ "enterq"; "leaveq" ]
    ~separation:Meta.Blended ()
