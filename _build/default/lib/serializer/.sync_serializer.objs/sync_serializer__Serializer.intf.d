lib/serializer/serializer.mli:
