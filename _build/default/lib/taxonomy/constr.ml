type cls = Exclusion | Priority

type t = {
  id : string;
  cls : cls;
  info : Info.kind list;
  description : string;
}

let make ~id ~cls ~info ~description = { id; cls; info; description }

let cls_to_string = function
  | Exclusion -> "exclusion"
  | Priority -> "priority"

let pp ppf t =
  Format.fprintf ppf "%s [%s; %a]: %s" t.id (cls_to_string t.cls)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Info.pp)
    t.info t.description
