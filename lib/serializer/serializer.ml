(* Possession protocol: one low-level mutex protects everything. A waiter
   woken from the entry queue or from an event queue has had possession
   transferred to it ([busy] stays true). Guard re-evaluation happens at
   every possession-release point, under the lock.

   Exception safety (abort policy: propagate). A guard that raises is
   evaluated by whichever process happens to be releasing possession — an
   innocent bystander — so the exception is not thrown there: the waiter
   is marked poisoned ([w_exn]), woken as if eligible, and re-raises the
   failure in its own context after passing possession on. *)

open Sync_platform
module Probe = Sync_trace.Probe

let abort_policy : Fault.abort_policy = `Propagate

type waiter = {
  guard : unit -> bool;
  rank : int;
  seq : int; (* global arrival order, used for longest-waiting arbitration *)
  cond : Condition.t;
  mutable released : bool;
  mutable w_exn : exn option; (* guard failure, delivered to the waiter *)
}

type queue = {
  qname : string;
  qsite : string; (* precomputed trace site, "serializer.q:<name>" *)
  mutable waiters : waiter list; (* sorted *)
}

type crowd = { cname : string; mutable members : int }

type t = {
  lock : Mutex.t;
  mutable busy : bool;
  mutable entry : waiter list; (* FIFO, sorted by seq *)
  mutable queues : queue list; (* creation order *)
  mutable next_seq : int;
}

let create () =
  { lock = Mutex.create ~name:"serializer.lock" (); busy = false; entry = [];
    queues = []; next_seq = 0 }

let fresh_waiter t ?(rank = 0) guard =
  let w =
    { guard; rank; seq = t.next_seq; cond = Condition.create ();
      released = false; w_exn = None }
  in
  t.next_seq <- t.next_seq + 1;
  w

(* Insert by (rank, seq): FIFO within equal ranks. *)
let rec insert_sorted w = function
  | [] -> [ w ]
  | w' :: rest as l ->
    if (w.rank, w.seq) < (w'.rank, w'.seq) then w :: l
    else w' :: insert_sorted w rest

(* Must hold t.lock. Pick, among the heads of all event queues whose guard
   is true, the one waiting longest (smallest seq); transfer possession to
   it. Otherwise hand possession to the oldest entry waiter; otherwise the
   serializer becomes free. *)
let release_possession t =
  let eligible_head q =
    match q.waiters with
    | [] -> None
    | w :: _ ->
      if w.w_exn <> None then Some (q, w) (* poisoned: wake it to fail *)
      else (
        match w.guard () with
        | true -> Some (q, w)
        | false -> None
        | exception e ->
          w.w_exn <- Some e;
          Some (q, w))
  in
  let best =
    List.fold_left
      (fun best q ->
        match (eligible_head q, best) with
        | None, best -> best
        | Some c, None -> Some c
        | Some (q, w), Some (_, w') ->
          if w.seq < w'.seq then Some (q, w) else best)
      None t.queues
  in
  match best with
  | Some (q, w) ->
    q.waiters <- List.filter (fun w' -> w' != w) q.waiters;
    w.released <- true;
    if Probe.enabled () then
      Probe.instant Handoff ~site:q.qsite ~arg:(List.length q.waiters);
    Condition.signal w.cond
  | None -> (
    match t.entry with
    | w :: rest ->
      t.entry <- rest;
      w.released <- true;
      if Probe.enabled () then
        Probe.instant Handoff ~site:"serializer.entry"
          ~arg:(List.length t.entry);
      Condition.signal w.cond
    | [] -> t.busy <- false)

let park t ~site w =
  if not w.released then begin
    Condition.wait w.cond t.lock;
    while not w.released do
      Probe.instant Spurious ~site ~arg:0;
      Condition.wait w.cond t.lock
    done
  end

let acquire t =
  let t0 = Probe.now () in
  Mutex.protect t.lock (fun () ->
      if t.busy then begin
        Fault.site "serializer.pre-wait";
        let w = fresh_waiter t (fun () -> true) in
        t.entry <- t.entry @ [ w ];
        park t ~site:"serializer.entry" w
      end
      else t.busy <- true);
  Probe.span Acquire ~site:"serializer.entry" ~since:t0 ~arg:0

let release t = Mutex.protect t.lock (fun () -> release_possession t)

let with_serializer t f =
  acquire t;
  let h0 = Probe.now () in
  match f () with
  | v ->
    Probe.span Hold ~site:"serializer" ~since:h0 ~arg:0;
    release t;
    v
  | exception e ->
    Probe.span Hold ~site:"serializer" ~since:h0 ~arg:0;
    release t;
    raise e

let inside t = Mutex.protect t.lock (fun () -> t.busy)

module Queue = struct
  type serializer = t

  type t = { owner : serializer; q : queue }

  let create ?(name = "queue") owner =
    let q = { qname = name; qsite = "serializer.q:" ^ name; waiters = [] } in
    Mutex.protect owner.lock (fun () -> owner.queues <- owner.queues @ [ q ]);
    { owner; q }

  let name t = t.q.qname

  let length t =
    Mutex.protect t.owner.lock (fun () -> List.length t.q.waiters)

  let is_empty t = length t = 0

  let guard_length t = List.length t.q.waiters

  let guard_is_empty t = t.q.waiters = []
end

module Crowd = struct
  type serializer = t

  type t = { owner : serializer; c : crowd }

  let create ?(name = "crowd") owner =
    { owner; c = { cname = name; members = 0 } }

  let name t = t.c.cname

  (* Crowd tests are used inside guards, which already run under the
     serializer lock; they are also used from tests outside it. Reading an
     int field is atomic enough for both. *)
  let count t = t.c.members

  let is_empty t = t.c.members = 0
end

let enqueue ?rank (q : Queue.t) ~until =
  let t = q.Queue.owner in
  Mutex.protect t.lock (fun () ->
      (* Before the waiter exists: an abort here leaves the queues
         untouched and unwinds with possession still held, released by
         [with_serializer]'s bracket. *)
      Fault.site "serializer.pre-wait";
      let t0 = Probe.now () in
      let depth = if t0 = 0 then 0 else List.length q.Queue.q.waiters in
      let w = fresh_waiter t ?rank until in
      q.Queue.q.waiters <- insert_sorted w q.Queue.q.waiters;
      release_possession t;
      park t ~site:q.Queue.q.qsite w;
      Probe.span Wait ~site:q.Queue.q.qsite ~since:t0 ~arg:depth;
      match w.w_exn with
      | None -> ()
      | Some e ->
        (* Our guard aborted: we were woken holding possession solely to
           fail; pass possession on, then fail the wait itself. *)
        release_possession t;
        raise e)

let join_crowd (c : Crowd.t) ~body =
  let t = c.Crowd.owner in
  Mutex.protect t.lock (fun () ->
      c.Crowd.c.members <- c.Crowd.c.members + 1;
      release_possession t);
  let regain () =
    Mutex.protect t.lock (fun () ->
        if t.busy then begin
          let w = fresh_waiter t (fun () -> true) in
          t.entry <- t.entry @ [ w ];
          park t ~site:"serializer.entry" w
        end
        else t.busy <- true;
        c.Crowd.c.members <- c.Crowd.c.members - 1)
  in
  match body () with
  | v ->
    regain ();
    v
  | exception e ->
    regain ();
    raise e
