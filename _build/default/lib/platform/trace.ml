type phase = Request | Enter | Exit | Mark

type event = {
  seq : int;
  time_ns : int64;
  pid : int;
  op : string;
  phase : phase;
  arg : int;
}

type t = {
  mutex : Mutex.t;
  mutable rev_events : event list;
  mutable next_seq : int;
}

let create () = { mutex = Mutex.create (); rev_events = []; next_seq = 0 }

let record t ~pid ~op ~phase ?(arg = 0) () =
  Mutex.lock t.mutex;
  let e =
    { seq = t.next_seq; time_ns = Clock.now_ns (); pid; op; phase; arg }
  in
  t.next_seq <- t.next_seq + 1;
  t.rev_events <- e :: t.rev_events;
  Mutex.unlock t.mutex

let events t =
  Mutex.lock t.mutex;
  let es = List.rev t.rev_events in
  Mutex.unlock t.mutex;
  es

let length t =
  Mutex.lock t.mutex;
  let n = t.next_seq in
  Mutex.unlock t.mutex;
  n

let clear t =
  Mutex.lock t.mutex;
  t.rev_events <- [];
  t.next_seq <- 0;
  Mutex.unlock t.mutex

let pp_phase ppf = function
  | Request -> Format.pp_print_string ppf "request"
  | Enter -> Format.pp_print_string ppf "enter"
  | Exit -> Format.pp_print_string ppf "exit"
  | Mark -> Format.pp_print_string ppf "mark"

let pp_event ppf e =
  let phase = Format.asprintf "%a" pp_phase e.phase in
  Format.fprintf ppf "%4d p%-3d %-8s %s(%d)" e.seq e.pid phase e.op e.arg

let pp ppf t =
  List.iter (fun e -> Format.fprintf ppf "%a@." pp_event e) (events t)
