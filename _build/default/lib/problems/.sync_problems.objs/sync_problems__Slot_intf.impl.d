lib/problems/slot_intf.ml: Constr Info Meta Spec Sync_taxonomy
