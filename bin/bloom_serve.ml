(* bloom-serve: the E24 fault-tolerant service tier.

   Four subcommands cover the whole experiment:

   - serve: the daemon. Serves the four Bloom problems over a Unix or
     TCP socket until SIGTERM/SIGINT, then drains gracefully; the exit
     status reports whether the drain beat its grace period.
   - drive: the open-loop client driver (optionally spawning its own
     daemon), emitting one report + outcome JSON document.
   - drill: the kill -9 recovery drill — crash the daemon mid-load,
     restart it, assert the clients rode through with zero hung
     connections and the survivor drains clean.
   - grid: the committed BENCH_E24.json sweep
     (problem x connections x rate). *)

open Cmdliner
module Server = Sync_serve.Server
module Chaos = Sync_serve.Chaos
module Proc = Sync_serve.Proc
module Driver = Sync_workload.Serve_driver
module Loadgen = Sync_workload.Loadgen
module Report = Sync_workload.Report
module Emit = Sync_metrics.Emit
module Probe = Sync_trace.Probe

let default_sock () =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "bloom-serve-%d.sock" (Unix.getpid ()))

let ms_to_ns ms = Int64.of_int (ms * 1_000_000)

(* -- shared terms -------------------------------------------------- *)

let unix_t =
  Arg.(value & opt (some string) None
       & info [ "unix" ] ~docv:"PATH" ~doc:"serve/connect on a Unix socket")

let tcp_t =
  Arg.(value & opt (some int) None
       & info [ "tcp" ] ~docv:"PORT" ~doc:"serve/connect on 127.0.0.1:PORT")

let addr_of ~unix ~tcp =
  match (unix, tcp) with
  | Some p, _ -> Server.Unix_sock p
  | None, Some port -> Server.Tcp port
  | None, None -> Server.Unix_sock (default_sock ())

let sockaddr_of ~unix ~tcp =
  match (unix, tcp) with
  | Some p, _ -> Ok (Unix.ADDR_UNIX p)
  | None, Some port ->
    Ok (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
  | None, None -> Error "need --unix PATH or --tcp PORT"

let chaos_t =
  Arg.(value & flag
       & info [ "chaos" ]
           ~doc:"enable the connection-chaos layer (seeded drop / delay / \
                 truncate / reset)")

let chaos_seed_t =
  Arg.(value & opt int 0
       & info [ "chaos-seed" ] ~docv:"SEED"
           ~doc:"seed for the chaos layer (replays byte-for-byte)")

let json_t =
  Arg.(value & opt (some string) None
       & info [ "json" ] ~docv:"FILE" ~doc:"write the JSON document to FILE")

let emit_json file doc =
  match file with
  | Some f -> Emit.write_file f doc
  | None -> print_endline (Emit.to_string ~pretty:true doc)

let stats_json (s : Server.stats) =
  Emit.Obj
    [ ("accepted", Emit.Int s.accepted);
      ("shed", Emit.Int s.shed);
      ("served", Emit.Int s.served);
      ("overloaded", Emit.Int s.overloaded);
      ("deadline_exceeded", Emit.Int s.deadline_exceeded);
      ("bad_request", Emit.Int s.bad_request);
      ("chaos_resets", Emit.Int s.chaos_resets) ]

(* -- serve --------------------------------------------------------- *)

let serve_cmd =
  let doc =
    "Run the daemon until SIGTERM/SIGINT, then drain. Exit 0 iff the drain \
     finished within the grace period."
  in
  let workers =
    Arg.(value & opt int 8
         & info [ "workers" ] ~docv:"N" ~doc:"connection-serving threads")
  in
  let accept_queue =
    Arg.(value & opt int 64
         & info [ "accept-queue" ] ~docv:"N"
             ~doc:"dispatch queue bound; beyond it connections are shed")
  in
  let rate =
    Arg.(value & opt float 2000.0
         & info [ "bucket-rate" ] ~docv:"TOK/S"
             ~doc:"per-problem admission token rate")
  in
  let burst =
    Arg.(value & opt int 256
         & info [ "bucket-burst" ] ~docv:"N" ~doc:"admission token burst")
  in
  let grace =
    Arg.(value & opt int 2000
         & info [ "grace-ms" ] ~docv:"MS"
             ~doc:"drain grace period before watchdog escalation")
  in
  let deadline =
    Arg.(value & opt int 250
         & info [ "default-deadline-ms" ] ~docv:"MS"
             ~doc:"budget applied to requests that send deadline 0")
  in
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"record E21 probes and write a Chrome trace on exit")
  in
  let run unix tcp workers accept_queue rate burst grace deadline chaos
      chaos_seed trace =
    let addr = addr_of ~unix ~tcp in
    let cfg =
      { (Server.default_config addr) with
        workers;
        accept_queue;
        bucket_rate = rate;
        bucket_burst = burst;
        grace_ms = grace;
        default_deadline_ns = ms_to_ns deadline;
        chaos =
          (if chaos then Some (Chaos.default_config ~seed:chaos_seed ())
           else None) }
    in
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    if trace <> None then Probe.enable ();
    let t = Server.start cfg in
    let stop = Atomic.make false in
    let on_sig _ = Atomic.set stop true in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle on_sig);
    Sys.set_signal Sys.sigint (Sys.Signal_handle on_sig);
    while not (Atomic.get stop) do
      Thread.delay 0.05
    done;
    let clean = Server.drain t in
    (match trace with
    | Some f ->
      Probe.disable ();
      Sync_trace.Chrome.write_file f [ ("bloom_serve", Probe.snapshot ()) ]
    | None -> ());
    print_endline
      (Emit.to_string ~pretty:true
         (Emit.Obj
            [ ("stats", stats_json (Server.stats t));
              ("drain_clean", Emit.Bool clean) ]));
    exit (if clean then 0 else 1)
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(const run $ unix_t $ tcp_t $ workers $ accept_queue $ rate $ burst
          $ grace $ deadline $ chaos_t $ chaos_seed_t $ trace)

(* -- driver config terms ------------------------------------------- *)

let connections_t =
  Arg.(value & opt int 8
       & info [ "connections"; "c" ] ~docv:"N" ~doc:"client connections")

let rate_t =
  Arg.(value & opt float 400.0
       & info [ "rate" ] ~docv:"REQ/S" ~doc:"aggregate offered rate")

let uniform_t =
  Arg.(value & flag
       & info [ "uniform" ] ~doc:"uniformly spaced arrivals (default Poisson)")

let duration_t =
  Arg.(value & opt (some int) None
       & info [ "duration-ms" ] ~docv:"MS"
           ~doc:"steady window (default 1000, or \\$SYNC_LOAD_MS)")

let warmup_t =
  Arg.(value & opt int 200 & info [ "warmup-ms" ] ~docv:"MS" ~doc:"warmup")

let seed_t =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"driver seed")

let problem_conv =
  let parse s =
    match Driver.problem_of_string s with
    | Ok p -> Ok p
    | Error e -> Error (`Msg e)
  in
  let print ppf p = Format.pp_print_string ppf (Driver.problem_to_string p) in
  Arg.conv (parse, print)

let problem_t =
  Arg.(value & opt problem_conv `Mix
       & info [ "problem" ] ~docv:"P" ~doc:"queue|sched|timer|kv|mix")

let deadline_ms_t =
  Arg.(value & opt int 50
       & info [ "deadline-ms" ] ~docv:"MS" ~doc:"per-request budget")

let churn_t =
  Arg.(value & opt int 64
       & info [ "churn" ] ~docv:"N"
           ~doc:"reconnect every N requests (0 = never)")

let retries_t =
  Arg.(value & opt int 6
       & info [ "retries" ] ~docv:"N" ~doc:"max retries per request")

let driver_config ~connections ~rate ~uniform ~duration ~warmup ~seed ~problem
    ~deadline_ms ~churn ~retries =
  { Driver.default_config with
    connections;
    rate_per_s = rate;
    arrival = (if uniform then Loadgen.Uniform_spaced else Loadgen.Poisson);
    duration_ms =
      (match duration with
      | Some d -> d
      | None -> Loadgen.duration_from_env ~default:1000);
    warmup_ms = warmup;
    seed;
    problem;
    deadline_ns = ms_to_ns deadline_ms;
    churn_every = churn;
    max_retries = retries }

let run_json report outcome =
  Emit.Obj
    [ ("report", Report.to_json report);
      ("outcome", Driver.outcome_to_json outcome) ]

(* -- drive --------------------------------------------------------- *)

let drive_cmd =
  let doc =
    "Open-loop load against a running daemon (or $(b,--spawn) one); emits \
     one report + outcome JSON document. Exits non-zero on hung \
     connections."
  in
  let spawn =
    Arg.(value & flag
         & info [ "spawn" ]
             ~doc:"spawn a daemon on the socket first, SIGTERM it after \
                   (adds drain_clean to the document)")
  in
  let run unix tcp connections rate uniform duration warmup seed problem
      deadline_ms churn retries chaos chaos_seed spawn json =
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let cfg =
      driver_config ~connections ~rate ~uniform ~duration ~warmup ~seed
        ~problem ~deadline_ms ~churn ~retries
    in
    let finish ?drain_clean report (outcome : Driver.outcome) =
      let doc =
        match run_json report outcome with
        | Emit.Obj fields ->
          Emit.Obj
            (fields
            @
            match drain_clean with
            | Some b -> [ ("drain_clean", Emit.Bool b) ]
            | None -> [])
        | doc -> doc
      in
      emit_json json doc;
      exit (if outcome.hung = 0 then 0 else 1)
    in
    if spawn then begin
      let sock = match unix with Some p -> p | None -> default_sock () in
      let args =
        [ "serve"; "--unix"; sock ]
        @ (if chaos then [ "--chaos"; "--chaos-seed"; string_of_int chaos_seed ]
           else [])
      in
      let child = Proc.spawn ~exe:Sys.executable_name ~args in
      if not (Proc.wait_for_socket sock) then begin
        Proc.kill9 child;
        ignore (Proc.wait child);
        prerr_endline "bloom_serve drive: spawned daemon never came up";
        exit 2
      end;
      let report, outcome = Driver.run ~sockaddr:(Unix.ADDR_UNIX sock) cfg in
      Proc.sigterm child;
      let drain_clean =
        match Proc.wait child with `Exited 0 -> true | _ -> false
      in
      finish ~drain_clean report outcome
    end
    else
      match sockaddr_of ~unix ~tcp with
      | Error e ->
        prerr_endline ("bloom_serve drive: " ^ e);
        exit 2
      | Ok sockaddr ->
        let report, outcome = Driver.run ~sockaddr cfg in
        finish report outcome
  in
  Cmd.v (Cmd.info "drive" ~doc)
    Term.(const run $ unix_t $ tcp_t $ connections_t $ rate_t $ uniform_t
          $ duration_t $ warmup_t $ seed_t $ problem_t $ deadline_ms_t
          $ churn_t $ retries_t $ chaos_t $ chaos_seed_t $ spawn $ json_t)

(* -- drill --------------------------------------------------------- *)

let drill_cmd =
  let doc =
    "The kill -9 drill: spawn a daemon, drive load, crash it mid-run, \
     restart, assert client recovery (zero hung connections) and a clean \
     drain of the survivor."
  in
  let kill_at =
    Arg.(value & opt (some int) None
         & info [ "kill-at-ms" ] ~docv:"MS"
             ~doc:"crash point into the steady window (default a third)")
  in
  let restart_after =
    Arg.(value & opt int 50
         & info [ "restart-after-ms" ] ~docv:"MS" ~doc:"dead-air before restart")
  in
  let run unix connections rate uniform duration warmup seed problem
      deadline_ms churn retries chaos chaos_seed kill_at restart_after json =
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let sock = match unix with Some p -> p | None -> default_sock () in
    let cfg =
      driver_config ~connections ~rate ~uniform ~duration ~warmup ~seed
        ~problem ~deadline_ms ~churn ~retries
    in
    let server_args =
      if chaos then [ "--chaos"; "--chaos-seed"; string_of_int chaos_seed ]
      else []
    in
    match
      Driver.drill ~exe:Sys.executable_name ~sock ~server_args ?kill_at_ms:kill_at
        ~restart_after_ms:restart_after cfg
    with
    | Error e ->
      prerr_endline ("bloom_serve drill: " ^ e);
      exit 2
    | Ok d ->
      emit_json json
        (Emit.Obj
           [ ("report", Report.to_json d.report);
             ("outcome", Driver.outcome_to_json d.outcome);
             ("ok_before_kill", Emit.Int d.ok_before_kill);
             ("ok_after_restart", Emit.Int d.ok_after_restart);
             ("drain_clean", Emit.Bool d.drain_clean) ]);
      let recovered = d.ok_after_restart > 0 in
      if d.outcome.hung = 0 && d.drain_clean && recovered then exit 0
      else begin
        Printf.eprintf
          "bloom_serve drill: FAILED (hung=%d drain_clean=%b \
           ok_after_restart=%d)\n\
           %!"
          d.outcome.hung d.drain_clean d.ok_after_restart;
        exit 1
      end
  in
  Cmd.v (Cmd.info "drill" ~doc)
    Term.(const run $ unix_t $ connections_t $ rate_t $ uniform_t $ duration_t
          $ warmup_t $ seed_t $ problem_t $ deadline_ms_t $ churn_t
          $ retries_t $ chaos_t $ chaos_seed_t $ kill_at $ restart_after
          $ json_t)

(* -- grid ---------------------------------------------------------- *)

let grid_cmd =
  let doc =
    "Run the E24 service-tier grid (problem x connections x rate) against a \
     spawned daemon and write BENCH_E24.json."
  in
  let out =
    Arg.(value & opt string "BENCH_E24.json"
         & info [ "out"; "o" ] ~docv:"FILE" ~doc:"output file")
  in
  let run out seed =
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let sock = default_sock () in
    let child =
      Proc.spawn ~exe:Sys.executable_name ~args:[ "serve"; "--unix"; sock ]
    in
    if not (Proc.wait_for_socket sock) then begin
      Proc.kill9 child;
      ignore (Proc.wait child);
      prerr_endline "bloom_serve grid: daemon never came up";
      exit 2
    end;
    let duration_ms = Loadgen.duration_from_env ~default:800 in
    let problems = [ `Queue; `Sched; `Timer; `Kv ] in
    let conn_grid = [ 2; 8; 32 ] in
    let rate_grid = [ 500.0; 2000.0 ] in
    let cells = ref [] in
    List.iter
      (fun problem ->
        List.iter
          (fun connections ->
            List.iter
              (fun rate ->
                Printf.eprintf "grid: %s c=%d rate=%.0f\n%!"
                  (Driver.problem_to_string problem)
                  connections rate;
                let cfg =
                  { Driver.default_config with
                    connections;
                    rate_per_s = rate;
                    duration_ms;
                    warmup_ms = max 100 (duration_ms / 5);
                    seed;
                    problem }
                in
                let report, outcome =
                  Driver.run ~sockaddr:(Unix.ADDR_UNIX sock) cfg
                in
                cells := run_json report outcome :: !cells)
              rate_grid)
          conn_grid)
      problems;
    Proc.sigterm child;
    let drain_clean =
      match Proc.wait child with `Exited 0 -> true | _ -> false
    in
    Emit.write_file out
      (Emit.Obj
         [ ("experiment", Emit.Str "E24");
           ("duration_ms", Emit.Int duration_ms);
           ("seed", Emit.Int seed);
           ("drain_clean", Emit.Bool drain_clean);
           ("cells", Emit.List (List.rev !cells)) ]);
    Printf.eprintf "grid: wrote %s (%d cells, drain_clean=%b)\n%!" out
      (List.length !cells) drain_clean;
    exit (if drain_clean then 0 else 1)
  in
  Cmd.v (Cmd.info "grid" ~doc) Term.(const run $ out $ seed_t)

let () =
  let doc = "the Bloom-problems service tier (experiment E24)" in
  let info = Cmd.info "bloom_serve" ~doc in
  exit (Cmd.eval (Cmd.group info [ serve_cmd; drive_cmd; drill_cmd; grid_cmd ]))
