lib/problems/spec.mli: Constr Format Info Sync_taxonomy
