(* E26: differential testing of the DPOR explorer against exhaustive DFS.
   On every scenario small enough for a complete naive DFS, DPOR must
   report the identical set of distinct failure messages with
   [complete = true] while exploring strictly fewer schedules — that
   cross-check is the soundness argument for trusting DPOR at the depths
   DFS cannot finish, which the completeness tests below then exercise on
   the footnote-3 anomaly and the E19 cancellation storm. *)

open Sync_platform
module D = Sync_detsched.Detsched
module Scenarios = Sync_detsched.Scenarios

let scen name =
  match Scenarios.find name with
  | Some e -> e.Scenarios.scen
  | None -> Alcotest.failf "scenario %s not in catalog" name

let distinct_messages failures =
  List.sort_uniq compare (List.map snd failures)

(* ------------------------------------------------------------------ *)
(* Small mutex/counter programs over raw [Detrt] tasks: the lost-update
   pattern (read under the lock, yield, write under the lock) fails with
   a final count that depends on the interleaving, so programs have
   several distinct failure messages — a strong set-equality oracle. *)

type op =
  | Balanced of int (* one locked increment of counter [m] *)
  | Two_phase of int (* racy two-phase increment: the classic lost update *)

type prog = { n_mutexes : int; tasks : op list list }

let exec_op mutexes counters = function
  | Balanced m ->
    Mutex.lock mutexes.(m);
    counters.(m) <- counters.(m) + 1;
    Mutex.unlock mutexes.(m)
  | Two_phase m ->
    Mutex.lock mutexes.(m);
    let v = counters.(m) in
    Mutex.unlock mutexes.(m);
    Detrt.yield ();
    Mutex.lock mutexes.(m);
    counters.(m) <- v + 1;
    Mutex.unlock mutexes.(m)

let op_to_string = function
  | Balanced m -> Printf.sprintf "B%d" m
  | Two_phase m -> Printf.sprintf "T%d" m

let prog_to_string p =
  Printf.sprintf "{m=%d; %s}" p.n_mutexes
    (String.concat " | "
       (List.map
          (fun ops -> String.concat "," (List.map op_to_string ops))
          p.tasks))

let prog_scenario p =
  D.scenario ~name:"prog" ~descr:(prog_to_string p)
    (fun () ->
      let mutexes = Array.init p.n_mutexes (fun _ -> Mutex.create ()) in
      let counters = Array.make p.n_mutexes 0 in
      { D.body =
          (fun () ->
            let ts =
              List.mapi
                (fun i ops ->
                  Detrt.spawn
                    ~name:(Printf.sprintf "w%d" i)
                    (fun () -> List.iter (exec_op mutexes counters) ops))
                p.tasks
            in
            List.iter Detrt.join ts);
        check =
          (fun () ->
            let want = Array.make p.n_mutexes 0 in
            List.iter
              (List.iter (function
                | Balanced m | Two_phase m -> want.(m) <- want.(m) + 1))
              p.tasks;
            let bad = ref None in
            Array.iteri
              (fun i w ->
                if !bad = None && counters.(i) <> w then
                  bad := Some (i, counters.(i), w))
              want;
            match !bad with
            | None -> Ok ()
            | Some (i, got, w) ->
              Error (Printf.sprintf "counter %d: got %d, want %d" i got w)) })

(* ------------------------------------------------------------------ *)
(* The differential harness itself. [max_failures] is far above any
   suite scenario's failure count, and the harness asserts the cap was
   not hit: a truncated failure list would make set-equality vacuous. *)

let differential ?(max_schedules = 400_000) sc () =
  let max_failures = 200_000 in
  let dfs = D.explore_dfs ~max_schedules ~max_failures sc in
  Alcotest.(check bool)
    (sc.D.name ^ ": DFS completes within the differential budget")
    true dfs.complete;
  Alcotest.(check bool)
    (sc.D.name ^ ": DFS failure list not truncated")
    true
    (List.length dfs.failures < max_failures);
  let dpor = D.explore_dpor ~max_schedules ~max_failures sc in
  Alcotest.(check bool) (sc.D.name ^ ": DPOR complete") true dpor.complete;
  Alcotest.(check (list string))
    (sc.D.name ^ ": identical distinct failure messages")
    (distinct_messages dfs.failures)
    (distinct_messages dpor.failures);
  Alcotest.(check bool)
    (Printf.sprintf "%s: DPOR explored strictly fewer (%d < %d)" sc.D.name
       dpor.explored dfs.explored)
    true
    (dpor.explored < dfs.explored)

let differential_progs =
  [ (* one racy pair: one lost-update message *)
    { n_mutexes = 1; tasks = [ [ Two_phase 0 ]; [ Two_phase 0 ] ] };
    (* race against a balanced writer *)
    { n_mutexes = 1; tasks = [ [ Two_phase 0 ]; [ Balanced 0 ] ] };
    (* three increments, two racy: two distinct failure messages *)
    { n_mutexes = 1; tasks = [ [ Two_phase 0; Balanced 0 ]; [ Two_phase 0 ] ] };
    (* fully independent counters: zero failures, maximal commutation *)
    { n_mutexes = 2; tasks = [ [ Two_phase 0 ]; [ Two_phase 1 ] ] } ]

let differential_tests =
  Alcotest.test_case "differential deadlock-abba" `Quick
    (differential (scen "deadlock-abba"))
  (* The E25 broken-lock control is DFS-feasible (~300k schedules), so
     the planted exclusion violation doubles as a differential row:
     both explorers must report the identical violation set. *)
  :: Alcotest.test_case "differential naive-rw-excl" `Quick
       (differential (scen "naive-rw-excl-2t1r"))
  :: List.map
       (fun p ->
         Alcotest.test_case ("differential " ^ prog_to_string p) `Quick
           (differential (prog_scenario p)))
       differential_progs

(* Property form of the same cross-check, over random programs. Shapes
   are kept complete-DFS-feasible by construction (two tasks, one op
   each); the QCheck seed is pinned via [Testutil.qcheck_case]. *)
let qcheck_differential =
  let gen =
    QCheck.Gen.(
      int_range 1 2 >>= fun n_mutexes ->
      let op =
        int_range 0 (n_mutexes - 1) >>= fun m ->
        oneofl [ Balanced m; Two_phase m ]
      in
      op >>= fun o1 ->
      op >>= fun o2 -> return { n_mutexes; tasks = [ [ o1 ]; [ o2 ] ] })
  in
  QCheck.Test.make ~name:"random programs: DPOR == DFS on failure sets"
    ~count:8
    (QCheck.make ~print:prog_to_string gen)
    (fun p ->
      let sc = prog_scenario p in
      let dfs = D.explore_dfs ~max_schedules:200_000 ~max_failures:100_000 sc in
      let dpor =
        D.explore_dpor ~max_schedules:200_000 ~max_failures:100_000 sc
      in
      if not dfs.complete then
        QCheck.Test.fail_reportf "%s: DFS incomplete" (prog_to_string p);
      if not dpor.complete then
        QCheck.Test.fail_reportf "%s: DPOR incomplete" (prog_to_string p);
      if distinct_messages dfs.failures <> distinct_messages dpor.failures then
        QCheck.Test.fail_reportf "%s: failure sets differ\nDFS : %s\nDPOR: %s"
          (prog_to_string p)
          (String.concat " | " (distinct_messages dfs.failures))
          (String.concat " | " (distinct_messages dpor.failures));
      if dpor.explored > dfs.explored then
        QCheck.Test.fail_reportf "%s: DPOR explored more (%d > %d)"
          (prog_to_string p) dpor.explored dfs.explored;
      true)

(* ------------------------------------------------------------------ *)
(* Completeness beyond DFS reach: the win condition. The same engine the
   differential suite just validated proves full coverage on scenarios
   whose schedule trees naive DFS cannot finish within the CI budget. *)

(* Footnote 3 (Figure 1 path expression): DPOR visits every equivalence
   class and confirms the writer-first anomaly is the only failure mode,
   where DFS exhausts the same budget with the tree unfinished. *)
let test_fn3_complete () =
  let sc = scen "rw-fig1" in
  let budget = 50_000 in
  let dfs = D.explore_dfs ~max_schedules:budget sc in
  Alcotest.(check bool) "naive DFS exceeds the budget" false dfs.complete;
  let r = D.explore_dpor ~max_schedules:budget ~max_failures:1_000 sc in
  Alcotest.(check bool) "DPOR covers every class" true r.complete;
  Alcotest.(check bool)
    (Printf.sprintf "DPOR finished under the DFS budget (%d < %d)" r.explored
       budget)
    true (r.explored < budget);
  Alcotest.(check bool) "anomaly schedules found" true (r.failures <> []);
  List.iter
    (fun (_, m) ->
      if not (Astring.String.is_infix ~affix:"writer-first" m) then
        Alcotest.failf "unexpected failure mode: %s" m)
    r.failures

(* E19 cancellation storm: the semaphore rollback machinery verified over
   the complete schedule tree (E19's DFS row stops at 2 000 bounded
   schedules; the full tree is beyond 3M). *)
let test_storm_complete () =
  let sc = scen "storm-bb-sem-1p1c2i" in
  let budget = 8_000 in
  let dfs = D.explore_dfs ~max_schedules:budget sc in
  Alcotest.(check bool) "naive DFS exceeds the budget" false dfs.complete;
  let r = D.explore_dpor ~max_schedules:budget sc in
  Alcotest.(check bool) "DPOR covers every class" true r.complete;
  Alcotest.(check (list string)) "every schedule recovers" []
    (distinct_messages r.failures)

(* The bb catalog entry at its smallest shape: full verification. *)
let test_bb_small_complete () =
  let sc = scen "bb-sem-small" in
  let r = D.explore_dpor ~max_schedules:50_000 sc in
  Alcotest.(check bool) "DPOR covers every class" true r.complete;
  Alcotest.(check (list string)) "no failures" [] (distinct_messages r.failures)

(* ------------------------------------------------------------------ *)
(* E25 class-restricted locks over deterministic registers: exhaustive
   (DPOR-complete) verification that the bakery and ticket constructions
   preserve mutual exclusion, and that the FCFS ticket semaphore never
   loses a wakeup (which would surface as a deadlock on some schedule).
   The broken test-then-set control above proves the witness machinery
   detects real violations. *)

let test_bakery_complete () =
  let sc = scen "bakery-excl-2t1r" in
  let budget = 50_000 in
  let dfs = D.explore_dfs ~max_schedules:budget sc in
  Alcotest.(check bool) "naive DFS exceeds the budget" false dfs.complete;
  let r = D.explore_dpor ~max_schedules:budget sc in
  Alcotest.(check bool) "DPOR covers every class" true r.complete;
  Alcotest.(check (list string)) "exclusion holds on every schedule" []
    (distinct_messages r.failures)

let test_ticket_complete () =
  let sc = scen "ticket-excl-2t2r" in
  let r = D.explore_dpor ~max_schedules:50_000 sc in
  Alcotest.(check bool) "DPOR covers every class" true r.complete;
  Alcotest.(check (list string)) "exclusion holds on every schedule" []
    (distinct_messages r.failures)

let test_ticket_sem_complete () =
  let sc = scen "ticket-sem-handoff-3t" in
  let r = D.explore_dpor ~max_schedules:150_000 sc in
  Alcotest.(check bool) "DPOR covers every class" true r.complete;
  Alcotest.(check (list string))
    "no lost wakeup, no exclusion breach, on any schedule" []
    (distinct_messages r.failures)

(* E27 hot-swap retiering: the DPOR-complete certificate that the
   lock / re-check / retry protocol behind [Mutex.swap_to] preserves
   exclusion across a mid-run tier flip — on a tree naive DFS cannot
   finish within the same budget. The control drops the re-check;
   every failure DPOR reports there must be the stale-cell exclusion
   violation the re-check exists to kill. *)
let test_swap_complete () =
  let sc = scen "swap-excl-1t1r1f" in
  let budget = 50_000 in
  let dfs = D.explore_dfs ~max_schedules:budget sc in
  Alcotest.(check bool) "naive DFS exceeds the budget" false dfs.complete;
  let r = D.explore_dpor ~max_schedules:budget sc in
  Alcotest.(check bool) "DPOR covers every class" true r.complete;
  Alcotest.(check (list string))
    "exclusion holds across the flip on every schedule" []
    (distinct_messages r.failures)

let test_swap_norecheck_found () =
  let sc = scen "swap-excl-norecheck-1t1r1f" in
  let r = D.explore_dpor ~max_schedules:50_000 ~max_failures:1_000 sc in
  Alcotest.(check bool) "DPOR covers every class" true r.complete;
  Alcotest.(check bool) "violations found" true (r.failures <> []);
  List.iter
    (fun (_, m) ->
      if not (Astring.String.is_infix ~affix:"exclusion violation" m) then
        Alcotest.failf "unexpected failure mode: %s" m)
    r.failures

(* ------------------------------------------------------------------ *)
(* Parallel sharding: partitioning the top-level frontier across domains
   must not change what is found. *)

let test_workers () =
  let sc = scen "deadlock-abba" in
  let seq = D.explore_dpor ~max_failures:1_000 sc in
  let par = D.explore_dpor ~max_failures:1_000 ~workers:2 sc in
  Alcotest.(check bool) "sequential complete" true seq.complete;
  Alcotest.(check bool) "parallel complete" true par.complete;
  Alcotest.(check bool) "used more than one worker" true (par.workers > 1);
  Alcotest.(check (list string))
    "same distinct failures"
    (distinct_messages seq.failures)
    (distinct_messages par.failures)

(* ------------------------------------------------------------------ *)
(* Footnote-3 seed regression: the printed seed from the E18 suite keeps
   reproducing, its schedule replays under strict mode, and the same
   anomaly is what the DPOR explorer reports (tested above); round-trip
   and error-path coverage for the printed schedule syntax rides along. *)

let test_fn3_seed_replay () =
  let sc = scen "rw-fig1" in
  let seed = 11 in
  let v = D.run_random ~seed sc in
  (match v.D.verdict with
  | Ok () -> Alcotest.failf "seed %d no longer fails" seed
  | Error m ->
    if not (Astring.String.is_infix ~affix:"writer-first" m) then
      Alcotest.failf "seed %d: unexpected message %s" seed m);
  let printed = D.Schedule.to_string v.D.outcome.schedule in
  let reparsed = D.Schedule.of_string printed in
  let v2 = D.replay ~strict:true sc reparsed in
  Alcotest.(check string)
    "replay of the printed schedule reproduces the verdict"
    (D.verdict_message v) (D.verdict_message v2)

let test_schedule_roundtrip () =
  let rt s = D.Schedule.to_string (D.Schedule.of_string s) in
  Alcotest.(check string) "empty" "-" (rt "-");
  Alcotest.(check string) "empty string" "-" (rt "");
  Alcotest.(check string) "single entry" "1/3" (rt "1/3");
  Alcotest.(check string) "whitespace tolerated" "1/3,0/2" (rt " 1/3 , 0/2 ");
  Alcotest.(check int) "empty parses to zero entries" 0
    (D.Schedule.length (D.Schedule.of_string "-"));
  let must_name tok s =
    match D.Schedule.of_string s with
    | _ -> Alcotest.failf "%S parsed" s
    | exception Invalid_argument m ->
      if not (Astring.String.is_infix ~affix:tok m) then
        Alcotest.failf "error for %S does not name token %S: %s" s tok m
  in
  must_name "a/b" "1/3,a/b";
  must_name "5" "5";
  must_name "1/2/3" "1/2/3,0/2";
  must_name "3/2" "3/2"

(* ------------------------------------------------------------------ *)
(* Shrink determinism: shrinking the same failing schedule twice yields
   byte-identical canonical schedules, which still fail under strict
   replay. *)

let shrink_twice sc failing =
  let s1 = D.shrink sc failing in
  let s2 = D.shrink sc failing in
  Alcotest.(check string)
    "byte-identical canonical schedules"
    (D.Schedule.to_string s1.D.shrunk)
    (D.Schedule.to_string s2.D.shrunk);
  let v = D.replay ~strict:true sc s1.D.shrunk in
  match v.D.verdict with
  | Ok () -> Alcotest.fail "shrunk schedule no longer fails"
  | Error _ -> ()

let test_shrink_deterministic_deadlock () =
  let sc = scen "deadlock-abba" in
  let r = D.explore_dfs ~max_schedules:100_000 sc in
  match r.failures with
  | [] -> Alcotest.fail "DFS found no deadlock"
  | (sched, _) :: _ -> shrink_twice sc sched

let test_shrink_deterministic_fn3 () =
  let sc = scen "rw-fig1" in
  let v = D.run_random ~seed:11 sc in
  Alcotest.(check bool) "seed 11 fails" false (D.verdict_ok v);
  shrink_twice sc v.D.outcome.schedule

(* ------------------------------------------------------------------ *)
(* Report bookkeeping: wall time and rate on both explorers, the
   strategy on sample reports. *)

let test_report_fields () =
  let sc = scen "deadlock-abba" in
  let dfs = D.explore_dfs ~max_schedules:500 sc in
  Alcotest.(check bool) "dfs secs non-negative" true (dfs.secs >= 0.0);
  Alcotest.(check bool) "dfs rate positive" true (dfs.per_sec > 0.0);
  let dpor = D.explore_dpor ~max_schedules:500 sc in
  Alcotest.(check bool) "dpor secs non-negative" true (dpor.secs >= 0.0);
  Alcotest.(check bool) "dpor rate positive" true (dpor.per_sec > 0.0);
  Alcotest.(check int) "dpor workers" 1 dpor.workers;
  let s1 = D.sample ~runs:3 sc in
  let s2 = D.sample ~runs:3 ~strategy:`Pct sc in
  Alcotest.(check bool) "sample default strategy" true (s1.strategy = `Random);
  Alcotest.(check bool) "sample pct strategy" true (s2.strategy = `Pct)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "dpor"
    [ ("differential", differential_tests);
      ("differential-properties", [ Testutil.qcheck_case qcheck_differential ]);
      ( "completeness",
        [ Alcotest.test_case "footnote-3 beyond DFS reach" `Quick
            test_fn3_complete;
          Alcotest.test_case "E19 storm beyond DFS reach" `Quick
            test_storm_complete;
          Alcotest.test_case "bb smallest shape" `Quick test_bb_small_complete
        ] );
      ( "primitives",
        [ Alcotest.test_case "bakery exclusion beyond DFS reach" `Quick
            test_bakery_complete;
          Alcotest.test_case "ticket lock exclusion" `Quick
            test_ticket_complete;
          Alcotest.test_case "ticket semaphore handoff" `Quick
            test_ticket_sem_complete;
          Alcotest.test_case "hot-swap flip exclusion beyond DFS reach"
            `Quick test_swap_complete;
          Alcotest.test_case "hot-swap without re-check caught" `Quick
            test_swap_norecheck_found ] );
      ( "parallel",
        [ Alcotest.test_case "sharded = sequential" `Quick test_workers ] );
      ( "regression",
        [ Alcotest.test_case "footnote-3 printed seed" `Quick
            test_fn3_seed_replay;
          Alcotest.test_case "schedule round-trip + bad tokens" `Quick
            test_schedule_roundtrip ] );
      ( "shrink",
        [ Alcotest.test_case "deterministic on deadlock" `Quick
            test_shrink_deterministic_deadlock;
          Alcotest.test_case "deterministic on footnote-3" `Quick
            test_shrink_deterministic_fn3 ] );
      ("reports", [ Alcotest.test_case "timing + strategy" `Quick
                      test_report_fields ]) ]
