(** Eventcounts and sequencers, after Reed-Kanodia (CACM 1979) — a
    synchronization mechanism contemporary with the paper, included as a
    further subject for the methodology (experiment E15).

    An {e eventcount} is a monotone counter: [advance] increments it and
    [await t n] blocks until its value reaches [n]. A {e sequencer} issues
    unique, totally ordered tickets. Together they express
    producer/consumer windows, strict service order, and time directly —
    but provide no construct for state-dependent scheduling (priorities,
    request-type policies), which is exactly what their partial row in
    the E3 matrix records. *)

module Eventcount : sig
  type t

  val create : ?initial:int -> unit -> t

  val read : t -> int

  val advance : t -> unit
  (** Increment and wake every waiter whose threshold is reached. *)

  val advance_to : t -> int -> unit
  (** Raise the count to at least [n] (monotone; no-op if already
      there). *)

  val await : t -> int -> unit
  (** Block until the count is [>= n]. *)

  val waiters : t -> int
end

module Sequencer : sig
  type t

  val create : unit -> t

  val ticket : t -> int
  (** Unique tickets [0, 1, 2, ...] in request order. *)
end
