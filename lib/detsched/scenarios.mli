(** Catalog of deterministic scenarios over the real mechanism
    implementations: bounded buffer (semaphore, monitor), the footnote-3
    writer-handoff situation (Figure 1 and 2 path expressions, monitor,
    serializer), FCFS drain order (Hoare monitor, Mesa ticket monitor,
    semaphore queue), and a deliberate lock-order-inversion deadlock.
    Entries marked [Fail] are the reproduced anomalies — exploration is
    expected to find failing schedules there and nowhere else. *)

type expectation = Pass | Fail

type entry = { scen : Detsched.t; expect : expectation }

val all : entry list

val find : string -> entry option

(** {1 Parametric builders}

    Sized variants of the catalog scenarios, for exploration experiments
    that need instance shapes the fixed catalog does not carry (the E26
    axis runs shapes whose schedule trees naive DFS cannot finish). *)

val bb_sized :
  string ->
  (module Sync_problems.Bb_intf.S) ->
  capacity:int ->
  producers:int ->
  consumers:int ->
  items:int ->
  Detsched.t
(** Bounded-buffer run + full trace check at the given instance size. *)

val rw_excl :
  string ->
  (module Sync_problems.Rw_intf.S) ->
  readers:int ->
  writers:int ->
  ops:int ->
  Detsched.t
(** Readers-writers stress mix whose check machine-verifies the
    mutual-exclusion invariant (writers exclude everything) on the
    recorded trace of every explored schedule. *)

val storm_bb_sem :
  ?capacity:int ->
  ?producers:int ->
  ?consumers:int ->
  ?items:int ->
  unit ->
  Detsched.t
(** The E19 cancellation storm (aborts at [semaphore.pre-wait] and
    [bb.put.body]) over the semaphore bounded buffer, parametric in the
    instance size; the recovery machinery is checked on every surviving
    operation. Uses the process-global fault registry: explore with
    [workers = 1]. *)

(** {1 Class-restricted primitives (E25)}

    The [Sync_prims] lock/semaphore functors instantiated over the
    deterministic runtime's recorded registers, so every protocol step
    is a scheduling point the explorers control. Exclusion is witnessed
    on a recorded register: any schedule that puts two tasks in the
    critical section together trips the check. *)

module Det_regs :
  Sync_prims.Regs.FULL with type t = Sync_platform.Detrt.reg

val bakery_excl : tasks:int -> rounds:int -> Detsched.t
(** Lamport bakery (RW registers, bounded timestamps), slot = task
    index. *)

val ticket_excl : tasks:int -> rounds:int -> Detsched.t
(** FAA ticket lock. *)

val naive_rw_excl : tasks:int -> rounds:int -> Detsched.t
(** The deliberately broken test-then-set RW "lock" — the control:
    exploration is expected to find its exclusion violation. *)

val ticket_sem_handoff : tasks:int -> Detsched.t
(** FCFS ticket semaphore handoff chain (budget 1); a lost wakeup would
    surface as a deterministic-runtime deadlock. *)

val mcs_excl : tasks:int -> rounds:int -> Detsched.t
(** MCS queue lock (E23), slot = task index; a dropped FIFO handoff
    would surface as a deterministic-runtime deadlock. *)

val clh_excl : tasks:int -> rounds:int -> Detsched.t
(** CLH queue lock (E23), slot = task index. *)

val qticket_excl : tasks:int -> rounds:int -> Detsched.t
(** Proportional-backoff ticket lock (E23); the backoff delay is pure
    computation, so the explored tree is the protocol's register
    traffic only. *)

val swap_excl : tasks:int -> rounds:int -> flips:int -> Detsched.t
(** The E27 hot-swap tier indirection ([Mutex.swap_to]'s protocol)
    modeled on recorded registers: workers acquire through the
    current-cell register (lock the cell, re-check the register, retry
    on a miss) while a flipper retiers it mid-run under the old cell's
    lock. Exploration certifies exclusion across the flip. *)

val swap_excl_norecheck : tasks:int -> rounds:int -> flips:int -> Detsched.t
(** The same protocol with the post-lock re-check removed — the broken
    control: exploration is expected to find the schedule where a
    worker enters through the stale cell while another enters through
    the new one. *)
