module Probe = Sync_trace.Probe
module Prims = Sync_prims.Prims
module Queuelock = Sync_prims.Queuelock

(* Adaptive (futex-style) mutex state: a single atomic int.
   0 = unlocked; 1 = locked, no waiter ever parked since last unlock;
   2 = locked, and some thread may be parked (or about to park) on [pc].
   Lock is a CAS 0->1; on failure a bounded randomized spin, then a
   park loop that pessimistically exchanges in 2 so the eventual
   unlocker knows a signal is owed. Unlock exchanges in 0 and signals
   only when the old state was 2 — the uncontended round trip is two
   atomic operations and never touches [pm]/[pc]. *)
type fast = {
  state : int Atomic.t;
  pm : Stdlib.Mutex.t;
  pc : Stdlib.Condition.t;
}

(* Hot-swappable (E27) mutex: one extra indirection through an atomic
   [cur] cell so the adaptive controller can retier a live site. The
   swap protocol is epoch-quiesced in the Epochrw sense — the swapper
   itself is the grace period:

     swap:    lock the old cell; publish the new cell to [cur];
              unlock the old cell.
     acquire: read [cur]; lock that cell; re-read [cur]; if it moved,
              unlock and retry on the new cell, else enter.

   Exclusion: a thread is in the critical section only while holding a
   cell it observed equal to [cur] *after* locking it. A swap away from
   that cell must first acquire it, which blocks until the holder
   leaves; until the swap publishes, every other acquirer routes to the
   same cell. Stragglers that locked the old cell after the swap see
   [cur] moved, back out, and retry — the old impl drains. Cells are
   never reused across swaps (each flip allocates a fresh cell), so the
   physical-equality re-check cannot be fooled by A-B-A. *)
type swap_cell =
  | C_sys of Stdlib.Mutex.t
  | C_fast of fast
  | C_queue of Queuelock.lock

type swap = {
  cur : swap_cell Atomic.t;
  (* The cell the current critical-section owner actually locked.
     Written after a successful re-check, read at unlock; both happen
     with the cell lock held, and consecutive owners are ordered by the
     cell locks plus the [cur] swap chain, so plain mutable is safe. *)
  mutable held : swap_cell;
}

type impl =
  | Sys of Stdlib.Mutex.t
  | Det of Detrt.mutex
  | Fast of fast
  | Prim of Prims.lock
  | Queue of Queuelock.lock
  | Swap of swap

type t = {
  impl : impl;
  (* Watchdog resource id for the Sys/Fast halves; -1 when the watchdog
     was off at creation. Det mutexes carry their own id inside Detrt. *)
  rid : int;
  name : string;
  (* Timestamp of the last successful acquire by the current holder; 0
     when tracing is off. Written only under the lock, so plain mutable
     is safe. Condition.wait resets it when the waiter re-acquires. *)
  mutable acquired_at : int;
}

(* The retierable universe: the tiers a swappable site can move
   between. Det is a different world and Prim is a deliberate class
   restriction, so neither participates. *)
type tier = [ `Sys | `Fast | `Queue of Queuelock.kind ]

let tier_name = function
  | `Sys -> "sys"
  | `Fast -> "fast"
  | `Queue k -> "queue-" ^ Queuelock.kind_name k

let all_tiers : tier list =
  `Sys :: `Fast :: List.map (fun k -> `Queue k) Queuelock.all

(* Stable small integers for the Flip probe argument, so a timeline can
   decode which tier a site flipped to without string events. *)
let tier_index = function
  | `Sys -> 0
  | `Fast -> 1
  | `Queue Queuelock.MCS -> 2
  | `Queue Queuelock.CLH -> 3
  | `Queue Queuelock.Ticket -> 4

let tier_of_index = function
  | 0 -> Some `Sys
  | 1 -> Some `Fast
  | 2 -> Some (`Queue Queuelock.MCS)
  | 3 -> Some (`Queue Queuelock.CLH)
  | 4 -> Some (`Queue Queuelock.Ticket)
  | _ -> None

let make_cell : tier -> swap_cell = function
  | `Sys -> C_sys (Stdlib.Mutex.create ())
  | `Fast ->
    C_fast
      { state = Atomic.make 0;
        pm = Stdlib.Mutex.create ();
        pc = Stdlib.Condition.create () }
  | `Queue k -> C_queue (Queuelock.make_lock k)

let cell_tier = function
  | C_sys _ -> `Sys
  | C_fast _ -> `Fast
  | C_queue q -> `Queue q.Queuelock.qk_kind

(* Creation-scoped opt-in for swappable mutexes, the same shape as
   [Fastpath.with_enabled]. The scope also owns the site registry the
   adaptive controller enumerates: entering a scope starts an empty
   registry, leaving restores the previous one, so a controller only
   ever sees the sites of its own run. *)
let swappable_flag = Atomic.make false

let swappable_selected () =
  Atomic.get swappable_flag && not (Detrt.active ())

let sites_lock = Stdlib.Mutex.create ()

let sites : t list ref = ref []

let swap_sites () =
  Stdlib.Mutex.lock sites_lock;
  let s = !sites in
  Stdlib.Mutex.unlock sites_lock;
  s

let with_swappable f =
  let saved_flag = Atomic.get swappable_flag in
  Stdlib.Mutex.lock sites_lock;
  (* Clear on entry, keep on exit: the controller typically starts
     after the build scope closes (Target.create wraps only the
     build), and must still be able to enumerate the run's sites. The
     next scope clears the slate. *)
  sites := [];
  Stdlib.Mutex.unlock sites_lock;
  Atomic.set swappable_flag true;
  Fun.protect
    ~finally:(fun () -> Atomic.set swappable_flag saved_flag)
    f

let create ?(name = "mutex") () =
  if Detrt.active () then
    { impl = Det (Detrt.mutex ()); rid = -1; name; acquired_at = 0 }
  else begin
    let impl =
      (* Precedence: Det (above) > Swap (E27 adaptive scope) > Prim
         (E25 class restriction) > Queue (E23 scalable-lock tier) >
         Fast (E22 adaptive tier) > Sys. *)
      if swappable_selected () then begin
        let c = make_cell `Sys in
        Swap { cur = Atomic.make c; held = c }
      end
      else
        match Prims.selected () with
        | Some c -> Prim (Prims.make_lock c)
        | None -> (
          match Queuelock.selected () with
          | Some k -> Queue (Queuelock.make_lock k)
          | None ->
          if Fastpath.active () then
            Fast
              { state = Atomic.make 0;
                pm = Stdlib.Mutex.create ();
                pc = Stdlib.Condition.create () }
          else Sys (Stdlib.Mutex.create ()))
    in
    let t =
      { impl;
        rid =
          (if Deadlock.enabled () then Deadlock.register ~kind:"mutex" ()
           else -1);
        name;
        acquired_at = 0 }
    in
    (match t.impl with
    | Swap _ ->
      Stdlib.Mutex.lock sites_lock;
      sites := t :: !sites;
      Stdlib.Mutex.unlock sites_lock
    | _ -> ());
    t
  end

(* How many backoff rounds to spin before parking. Backoff doubles its
   randomized spin bound each round, so this covers short critical
   sections without burning a core when the holder is descheduled. On a
   single-core machine the holder cannot run while we spin, so the only
   useful move is to park straight away (pthread mutexes make the same
   call: their adaptive spin is conditional on SMP). Yield-until-free
   is NOT an option here: with one thread per domain, [Thread.yield]
   skips the reschedule entirely (nobody else waits on the domain's
   master lock), so a yield loop degenerates into a hot spin.

   E27 makes the round count live-tunable: the adaptive controller
   retunes it from observed wait distributions. The extra atomic load
   sits on the already-contended slow path only — the uncontended CAS
   never reads it. *)
let default_spin_rounds =
  if Domain.recommended_domain_count () > 1 then 8 else 0

let spin_rounds_cell = Atomic.make default_spin_rounds

let spin_rounds () = Atomic.get spin_rounds_cell

let set_spin_rounds n =
  if n < 0 then invalid_arg "Mutex.set_spin_rounds: negative round count";
  Atomic.set spin_rounds_cell n

let fast_lock_raw f =
  if not (Atomic.compare_and_set f.state 0 1) then begin
    (* Bounded spin: cheap loads with exponential backoff between CAS
       retries, so brief contention never pays a futex round trip. *)
    let b = Backoff.create () in
    let rec spin n =
      n > 0
      && ((Atomic.get f.state = 0 && Atomic.compare_and_set f.state 0 1)
         ||
         (Backoff.once b;
          spin (n - 1)))
    in
    if not (spin (spin_rounds ())) then begin
      (* Park. From here on we advertise 2 (waiters present): whoever
         unlocks while the state is 2 must signal. The exchange both
         attempts the acquire and publishes the pessimistic state. *)
      let rec park () =
        if Atomic.exchange f.state 2 <> 0 then begin
          Stdlib.Mutex.lock f.pm;
          (* Re-check under [pm]: unlock signals under [pm], so either
             the state already left 2 (no sleep) or the signal cannot
             fire before we are actually waiting. Spurious wakeups just
             re-run the exchange. *)
          if Atomic.get f.state = 2 then Stdlib.Condition.wait f.pc f.pm;
          Stdlib.Mutex.unlock f.pm;
          park ()
        end
      in
      park ()
    end
  end

let fast_unlock_raw f =
  if Atomic.exchange f.state 0 = 2 then begin
    Stdlib.Mutex.lock f.pm;
    Stdlib.Condition.signal f.pc;
    Stdlib.Mutex.unlock f.pm
  end

(* -- hot-swap cell operations -------------------------------------- *)

let cell_lock_raw = function
  | C_sys m -> Stdlib.Mutex.lock m
  | C_fast f -> fast_lock_raw f
  | C_queue q -> q.Queuelock.qk_lock ()

let cell_try_raw = function
  | C_sys m -> Stdlib.Mutex.try_lock m
  | C_fast f -> Atomic.compare_and_set f.state 0 1
  | C_queue q -> q.Queuelock.qk_try ()

let cell_unlock_raw = function
  | C_sys m -> Stdlib.Mutex.unlock m
  | C_fast f -> fast_unlock_raw f
  | C_queue q -> q.Queuelock.qk_unlock ()

(* Acquire through the indirection: lock the cell [cur] points at, then
   re-check [cur]. A swap can only publish while holding the cell it
   replaces, so observing [cur == c] with [c] locked proves no newer
   cell is (or can become) lockable until we release — see the protocol
   note on [swap]. The retry loop terminates because each iteration
   rides a distinct published swap, and swaps are controller-paced. *)
let rec swap_lock_raw s =
  let c = Atomic.get s.cur in
  cell_lock_raw c;
  if Atomic.get s.cur == c then s.held <- c
  else begin
    cell_unlock_raw c;
    swap_lock_raw s
  end

let swap_unlock_raw s = cell_unlock_raw s.held

let rec swap_try_raw s =
  let c = Atomic.get s.cur in
  if cell_try_raw c then
    if Atomic.get s.cur == c then begin
      s.held <- c;
      true
    end
    else begin
      cell_unlock_raw c;
      swap_try_raw s
    end
  else false

let current_tier t =
  match t.impl with
  | Swap s -> Some (cell_tier (Atomic.get s.cur))
  | _ -> None

let rec swap_to t tier =
  match t.impl with
  | Swap s ->
    let old = Atomic.get s.cur in
    if cell_tier old = tier then false
    else begin
      cell_lock_raw old;
      if Atomic.get s.cur != old then begin
        (* Lost a race with a concurrent swapper: back out and retry
           against the freshly published cell. *)
        cell_unlock_raw old;
        swap_to t tier
      end
      else begin
        (* We hold the live cell: every acquirer either waits on it or
           will fail its re-check. Publish the fresh cell — new
           arrivals route there immediately — then drain by release. *)
        Atomic.set s.cur (make_cell tier);
        cell_unlock_raw old;
        Probe.instant Flip ~site:t.name ~arg:(tier_index tier);
        true
      end
    end
  | _ -> false

let lock t =
  let t0 = Probe.now () in
  (match t.impl with
  | Sys m ->
    if t.rid >= 0 && Deadlock.enabled () then begin
      Deadlock.blocked t.rid;
      Stdlib.Mutex.lock m;
      Deadlock.acquired t.rid
    end
    else Stdlib.Mutex.lock m
  | Fast f ->
    if t.rid >= 0 && Deadlock.enabled () then begin
      Deadlock.blocked t.rid;
      fast_lock_raw f;
      Deadlock.acquired t.rid
    end
    else fast_lock_raw f
  | Prim p ->
    if t.rid >= 0 && Deadlock.enabled () then begin
      Deadlock.blocked t.rid;
      p.Prims.lk_lock ();
      Deadlock.acquired t.rid
    end
    else p.Prims.lk_lock ()
  | Queue q ->
    if t.rid >= 0 && Deadlock.enabled () then begin
      Deadlock.blocked t.rid;
      q.Queuelock.qk_lock ();
      Deadlock.acquired t.rid
    end
    else q.Queuelock.qk_lock ()
  | Swap s ->
    if t.rid >= 0 && Deadlock.enabled () then begin
      Deadlock.blocked t.rid;
      swap_lock_raw s;
      Deadlock.acquired t.rid
    end
    else swap_lock_raw s
  | Det m -> Detrt.mutex_lock m);
  if t0 <> 0 then begin
    Probe.span Acquire ~site:t.name ~since:t0 ~arg:0;
    t.acquired_at <- Probe.now ()
  end

let unlock t =
  if t.acquired_at <> 0 then begin
    Probe.span Hold ~site:t.name ~since:t.acquired_at ~arg:0;
    t.acquired_at <- 0
  end;
  match t.impl with
  | Sys m ->
    if t.rid >= 0 && Deadlock.enabled () then Deadlock.released t.rid;
    Stdlib.Mutex.unlock m
  | Fast f ->
    if t.rid >= 0 && Deadlock.enabled () then Deadlock.released t.rid;
    fast_unlock_raw f
  | Prim p ->
    if t.rid >= 0 && Deadlock.enabled () then Deadlock.released t.rid;
    p.Prims.lk_unlock ()
  | Queue q ->
    if t.rid >= 0 && Deadlock.enabled () then Deadlock.released t.rid;
    q.Queuelock.qk_unlock ()
  | Swap s ->
    if t.rid >= 0 && Deadlock.enabled () then Deadlock.released t.rid;
    swap_unlock_raw s
  | Det m -> Detrt.mutex_unlock m

let try_lock t =
  let ok =
    match t.impl with
    | Sys m ->
      let ok = Stdlib.Mutex.try_lock m in
      if ok && t.rid >= 0 && Deadlock.enabled () then Deadlock.acquired t.rid;
      ok
    | Fast f ->
      let ok = Atomic.compare_and_set f.state 0 1 in
      if ok && t.rid >= 0 && Deadlock.enabled () then Deadlock.acquired t.rid;
      ok
    | Prim p ->
      let ok = p.Prims.lk_try () in
      if ok && t.rid >= 0 && Deadlock.enabled () then Deadlock.acquired t.rid;
      ok
    | Queue q ->
      let ok = q.Queuelock.qk_try () in
      if ok && t.rid >= 0 && Deadlock.enabled () then Deadlock.acquired t.rid;
      ok
    | Swap s ->
      let ok = swap_try_raw s in
      if ok && t.rid >= 0 && Deadlock.enabled () then Deadlock.acquired t.rid;
      ok
    | Det m -> Detrt.mutex_try_lock m
  in
  if ok then begin
    (* A successful try_lock is a zero-wait acquire; emit the span so
       profiled acquire counts include try-lock users. *)
    let n = Probe.now () in
    if n <> 0 then begin
      Probe.span Acquire ~site:t.name ~since:n ~arg:0;
      t.acquired_at <- n
    end
  end;
  ok

let try_lock_for t ~timeout_ns =
  let deadline = Deadline.after_ns timeout_ns in
  match t.impl with
  | Det _ ->
    (* Deterministic runs: every poll must be a scheduling point the
       recorded schedule controls, so no wall-clock backoff here. *)
    let rec loop () =
      if try_lock t then true
      else if Deadline.expired deadline then false
      else begin
        Detrt.relax ();
        loop ()
      end
    in
    loop ()
  | Sys _ | Fast _ | Prim _ | Queue _ | Swap _ ->
    (* Queue-tier timed attempts poll [try_lock] too: the queue locks'
       try never publishes a waiter node, so a timeout cannot strand a
       wakeup in the FIFO queue. *)
    let b = Backoff.create () in
    let rec loop () =
      if try_lock t then true
      else if Deadline.expired deadline then false
      else begin
        Backoff.once b;
        loop ()
      end
    in
    loop ()

let protect m f =
  lock m;
  match f () with
  | v ->
    unlock m;
    v
  | exception e ->
    unlock m;
    raise e
