open Sync_platform
module Probe = Sync_trace.Probe

let abort_policy : Fault.abort_policy = `Propagate

type 'a t = {
  lock : Mutex.t;
  changed : Condition.t;
  state : 'a;
  mutable blocked : int;
}

let create state =
  { lock = Mutex.create ~name:"ccr.lock" (); changed = Condition.create ();
    state; blocked = 0 }

let region ?when_ t f =
  Mutex.protect t.lock (fun () ->
      (match when_ with
      | None -> ()
      | Some guard -> (
        Fault.site "ccr.pre-wait";
        t.blocked <- t.blocked + 1;
        match
          if not (guard t.state) then begin
            let t0 = Probe.now () in
            Condition.wait t.changed t.lock;
            while not (guard t.state) do
              (* Broadcast reached us but the guard is still false. *)
              Probe.instant Spurious ~site:"ccr.guard" ~arg:0;
              Condition.wait t.changed t.lock
            done;
            Probe.span Wait ~site:"ccr.guard" ~since:t0 ~arg:t.blocked
          end
        with
        | () -> t.blocked <- t.blocked - 1
        | exception e ->
          (* A raising guard (or injected abort while blocked) must not
             leave the blocked count over-stated. *)
          t.blocked <- t.blocked - 1;
          raise e));
      let h0 = Probe.now () in
      match f t.state with
      | v ->
        (* Any region body may have changed the state: re-test every
           guard, also when the body aborted partway through a change. *)
        Probe.span Hold ~site:"ccr.region" ~since:h0 ~arg:0;
        if Probe.enabled () && t.blocked > 0 then
          Probe.instant Signal ~site:"ccr.guard" ~arg:t.blocked;
        Condition.broadcast t.changed;
        v
      | exception e ->
        Condition.broadcast t.changed;
        raise e)

let await t p = region ~when_:p t ignore

let waiters t = Mutex.protect t.lock (fun () -> t.blocked)
