(** Loadable mechanism x problem targets.

    A target packages one registered solution from [sync_problems] —
    the same first-class modules the conformance registry verifies —
    behind a uniform "array of operations" interface the load generator
    can drive without knowing the problem. Each instance owns a fresh
    self-checking resource (ring / slot / store / disk), so an
    ill-synchronized mechanism fails the run loudly instead of producing
    a fast-but-wrong throughput number.

    Operation selection semantics matter for liveness: for the
    producer/consumer problems (bounded buffer, one-slot buffer) every
    worker must execute the full [put; get] cycle per iteration —
    per-worker balance is what makes an all-workers-blocked-in-[put]
    state unreachable and lets the run drain cleanly at shutdown. Those
    targets declare {!Cycle}; request/response problems (readers-writers,
    FCFS, disk) declare {!Weighted} mixes or single-op cycles.

    The alarm-clock problem historically sat out (a wall-clock load on
    it measures its virtual-clock driver as much as the mechanism); E27
    brings it in with the driver embedded — a ticker thread inside the
    instance, identical for every tier, so tier-to-tier ratios still
    isolate the synchronizer. *)

type op = {
  name : string;
  run : rng:Sync_platform.Prng.t -> pid:int -> unit;
      (** Execute one operation. [rng] is the calling worker's private
          generator (parameter skew); [pid] its worker index. *)
}

type selection =
  | Cycle  (** run the whole op array in order, once per iteration *)
  | Weighted of int array
      (** pick one op per iteration with these relative weights *)

type tier =
  [ `Default
  | `Fast
  | `Prim of Sync_prims.Prims.cls
  | `Queue of Sync_prims.Queuelock.kind
  | `Adaptive ]
(** Which platform substrate the instance is built on. [`Default] is
    the stdlib-backed tier; [`Fast] builds the solution with
    {!Sync_platform.Fastpath} enabled — adaptive mutexes, fetch-and-add
    weak semaphores — and gives the bounded buffer the Vyukov
    {!Sync_resources.Fastring} resource. Mechanism code and semantics
    are identical; only the substrate's cost profile changes (E22).
    [`Prim c] builds the solution under
    {!Sync_prims.Prims.with_class}[ c] — every platform mutex and
    counting semaphore it creates is constructed from atomic class [c]
    alone (E25 hierarchy runs); [`Prim Native] is the explicit
    no-restriction scope, labeled ["native"]. [`Queue k] builds it
    under {!Sync_prims.Queuelock.with_kind}[ k] — every platform mutex
    is a local-spin queue lock of kind [k] (MCS / CLH / proportional
    ticket) and counting semaphores use the FAA prim constructions
    (E23 scalable-lock runs). [`Adaptive] builds it under
    {!Sync_platform.Mutex.with_swappable} — every platform mutex is a
    hot-swappable site the E27 controller can retier live; the scope's
    site registry survives the build so the controller can enumerate
    it afterwards. *)

val tier_name : tier -> string
(** ["default"] / ["fast"] — the label reported in {!Report.t} rows. *)

type instance = {
  meta : Sync_taxonomy.Meta.t;  (** the driven solution's registry metadata *)
  tier : string;  (** {!tier_name} of the tier the instance was built on *)
  ops : op array;
  selection : selection;
  stop : unit -> unit;  (** release solution resources (CSP servers etc.) *)
}

type params = {
  capacity : int;  (** bounded-buffer slots (default 8) *)
  work : int;  (** busywork iterations inside each resource body (default 0) *)
  read_pct : int;  (** readers-writers read share, 0..100 (default 90) *)
  tracks : int;  (** disk cylinders (default 256) *)
  hot_pct : int;
      (** disk skew: percentage of requests aimed at the first tenth of
          the tracks (default 0 = uniform) *)
}

val default_params : params

val problems : string list
(** Problems with load targets, in the paper's order. *)

val mechanisms : problem:string -> string list
(** Mechanisms with a target for [problem] (empty for unknown). *)

val create :
  ?params:params -> ?tier:tier -> problem:string -> mechanism:string ->
  unit -> (instance, string) result
(** Build a fresh instance (fresh resource, fresh synchronizer). With
    [~tier:`Fast] the whole solution is built under
    {!Sync_platform.Fastpath.with_enabled} (no effect inside a {!Detrt}
    run, where the deterministic substrate always wins). The error
    names the valid choices.

    With [~tier:(`Prim c)] the build runs under the class restriction
    and may raise {!Sync_prims.Prims.Unsupported} when the mechanism
    needs a primitive class [c] cannot express — a typed outcome the
    hierarchy axis records, not an error string. *)
