(** The E24 client driver: open-loop load against a running bloom_serve
    daemon over its wire protocol — the `--serve` mode of the workload
    engine.

    Each of [connections] client actors owns one socket connection and
    fires requests on its own Poisson (or uniform) arrival schedule at
    [rate_per_s / connections]; latency is measured from the {e
    intended} arrival, so server-side queueing and retry delay land in
    the recorded tail (the same coordinated-omission correction as
    {!Loadgen}). Actors churn: every [churn_every] requests the
    connection is closed and reopened, so accept-path behaviour stays
    exercised throughout the run.

    Failure handling is the client half of the robustness story: an
    [Overloaded] reply honours the server's retry hint, a reset/EOF
    reconnects, and both retry under capped exponential backoff with
    full jitter ({!Sync_serve.Client.backoff_ms}) up to [max_retries];
    a request that exhausts its retries is recorded as a failure, never
    silently dropped. Every actor terminates — requests carry deadlines
    and sockets carry receive timeouts — so a crashed or wedged server
    shows up as typed outcome counts with {b zero hung connections},
    which is exactly what the Service axis and the chaos drill
    assert. *)

type problem = [ `Queue | `Sched | `Timer | `Kv | `Mix ]

val problem_of_string : string -> (problem, string) result

val problem_to_string : problem -> string

type config = {
  connections : int;
  rate_per_s : float;  (** aggregate across all connections *)
  arrival : Loadgen.arrival;
  duration_ms : int;
  warmup_ms : int;  (** samples before steady state are discarded *)
  seed : int;
  problem : problem;
  deadline_ns : int64;  (** per-request budget sent in the header *)
  churn_every : int;  (** reconnect after this many requests; 0 = never *)
  backoff_base_ms : int;
  backoff_cap_ms : int;
  max_retries : int;
}

val default_config : config
(** 8 connections, 400 req/s Poisson, 1 s steady after 200 ms warmup,
    50 ms deadlines, churn every 64 requests, backoff 2..200 ms, 6
    retries, seed 42. *)

(** Terminal outcome counts across the run (steady + warmup). Every
    request ends in exactly one of the first five; [hung] counts actors
    that failed to terminate by the join deadline (always 0 unless
    something is deeply wrong — it gates the chaos drill). *)
type outcome = {
  ok : int;
  overloaded : int;  (** terminal [Overloaded] after retries exhausted *)
  deadline : int;  (** [Deadline_exceeded] replies + client-side timeouts *)
  conn_failed : int;  (** terminal reset/EOF after retries exhausted *)
  bad : int;  (** [Bad_request] / [Shutting_down] / undecodable *)
  retries : int;  (** total retry attempts (informational) *)
  reconnects : int;  (** churn + failure-driven reconnections *)
  hung : int;
}

val outcome_to_json : outcome -> Sync_metrics.Emit.t

val run : sockaddr:Unix.sockaddr -> config -> Report.t * outcome
(** Drive a running server. The report rows carry op labels per served
    problem ("put", "get", "seek", ...); failures in the summary are
    requests whose terminal outcome was not [Ok]. *)

type drill = {
  report : Report.t;
  outcome : outcome;
  ok_before_kill : int;
  ok_after_restart : int;  (** successful requests served by the restarted daemon *)
  drain_clean : bool;  (** the restarted daemon drained on SIGTERM *)
}

val drill :
  exe:string ->
  sock:string ->
  ?server_args:string list ->
  ?kill_at_ms:int ->
  ?restart_after_ms:int ->
  config ->
  (drill, string) result
(** The kill -9 drill (Service axis, tier-1): spawn [exe] serving
    [sock], drive open-loop load, [kill -9] the daemon mid-run, restart
    it on the same socket, keep driving, then SIGTERM the survivor and
    check the drain. Clients must ride through the crash on their
    backoff path: the result reports recovery ([ok_after_restart]) and
    the zero-hung invariant via [outcome.hung]. *)
