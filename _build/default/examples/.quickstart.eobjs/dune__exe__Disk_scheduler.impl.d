examples/disk_scheduler.ml: Disk_csp Disk_fcfs Disk_harness Disk_mon Disk_ser List Printf String Sync_problems
