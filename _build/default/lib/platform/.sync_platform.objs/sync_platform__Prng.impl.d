lib/platform/prng.ml: Array Int64
