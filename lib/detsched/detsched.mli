(** Deterministic-schedule exploration (the harness over {!Sync_platform.Detrt}).

    A {e scenario} packages a concurrent workload together with its
    invariant check. [make] runs {e inside} the deterministic run body, so
    every mutex, condition, semaphore and trace the mechanism creates
    dispatches to the virtual runtime; [check] runs after the schedule has
    fully unwound and feeds the recorded trace to the existing checkers in
    [sync_problems].

    Every run records its choice sequence as a {!Schedule.t}; the same
    schedule (or the same strategy seed) replays the execution
    byte-for-byte. Strategies: seeded random walk, PCT-style priority
    fuzzing, bounded exhaustive DFS. Failing schedules can be shrunk to a
    canonical small counterexample. *)

module Schedule : sig
  type entry = { alts : int; chosen : int }
  (** One recorded decision: [chosen] of [alts] candidates ([alts >= 2];
      forced moves are not recorded). *)

  type t = entry array

  val length : t -> int

  val choices : t -> int array
  (** Just the chosen indices. *)

  val to_string : t -> string
  (** ["1/3,0/2,..."], or ["-"] for the empty schedule. Inverse of
      {!of_string}. *)

  val of_string : string -> t
  (** @raise Invalid_argument on malformed input, naming the offending
      token. *)
end

type outcome = {
  schedule : Schedule.t;  (** the recorded decisions, replayable *)
  steps : int;  (** scheduling steps taken by the runtime *)
  result : (unit, exn) result;
      (** [Error] holds the first escaped exception, including
          {!Sync_platform.Detrt.Deadlock} / [Step_limit]. *)
}

type instance = {
  body : unit -> unit;  (** the workload, run as the main virtual task *)
  check : unit -> (unit, string) result;
      (** invariant check, called after the run completes normally *)
}

type t = { name : string; descr : string; make : unit -> instance }

val scenario : name:string -> descr:string -> (unit -> instance) -> t

type verdict = {
  outcome : outcome;
  verdict : (unit, string) result;
      (** [Ok] iff the run completed and the instance check passed *)
}

val verdict_ok : verdict -> bool

val verdict_message : verdict -> string

(** {1 Pickers} *)

type pick = int array -> int
(** A strategy: candidate task ids in, index to run out. Consulted only
    when at least two candidates exist. *)

val random_pick : seed:int -> pick
(** Seeded uniform random walk ({!Sync_platform.Prng}; independent of the
    global [Random] state). *)

val pct_pick : ?change_points:int -> ?horizon:int -> seed:int -> unit -> pick
(** PCT-style priority fuzzing: random per-task priorities, highest runs;
    at [change_points] pre-sampled decision indices (within [horizon]) the
    current leader is demoted below everyone. *)

val replay_pick : ?strict:bool -> Schedule.t -> pick
(** Replay a recorded schedule; decisions past the end take alternative 0.
    Under [strict] (default) a mismatch in the number of alternatives
    raises — the scenario diverged from the recording. *)

val choices_pick : int array -> pick
(** Replay from bare choice indices, clamping out-of-range values; used by
    DFS prefixes and shrinking. *)

(** {1 Running} *)

val run :
  ?max_steps:int ->
  ?observe:(Sync_platform.Detrt.Obs.event -> unit) ->
  pick:pick ->
  t ->
  verdict
(** [observe] taps the runtime's event narration (see
    {!Sync_platform.Detrt.Obs}); the DPOR engine is its main consumer. *)

val run_random : ?max_steps:int -> seed:int -> t -> verdict

val run_pct :
  ?max_steps:int -> ?change_points:int -> ?horizon:int -> seed:int -> t ->
  verdict

val replay : ?max_steps:int -> ?strict:bool -> t -> Schedule.t -> verdict

type sample_report = {
  runs : int;  (** runs actually performed *)
  strategy : [ `Random | `Pct ];
      (** the strategy the sample (and so any failing seed) used *)
  failure : (int * verdict) option;  (** first failing seed, if any *)
}

val sample :
  ?max_steps:int -> ?runs:int -> ?base_seed:int ->
  ?strategy:[ `Random | `Pct ] -> t -> sample_report
(** Run consecutive seeds [base_seed, base_seed+1, ...], stopping at the
    first failure. *)

type dfs_report = {
  explored : int;
  complete : bool;  (** the whole schedule tree was visited *)
  failures : (Schedule.t * string) list;  (** capped at [max_failures] *)
  deepest : int;  (** longest recorded schedule, in decisions *)
  secs : float;  (** wall time spent exploring *)
  per_sec : float;  (** explored schedules per second *)
}

val explore_dfs :
  ?max_steps:int -> ?max_schedules:int -> ?max_failures:int -> t -> dfs_report
(** Bounded exhaustive search over all schedules by prefix replay
    (stateless-model-checking style, no partial-order reduction). *)

type dpor_report = {
  explored : int;
  complete : bool;
      (** every Mazurkiewicz-trace equivalence class was covered (subject
          to [max_steps], like DFS) *)
  failures : (Schedule.t * string) list;  (** capped at [max_failures] *)
  deepest : int;
  races : int;  (** reversible races that planted backtrack points *)
  redundant : int;
      (** runs whose whole frontier was asleep (pure sleep-set overhead) *)
  workers : int;  (** domains actually used *)
  secs : float;
  per_sec : float;
}

val explore_dpor :
  ?max_steps:int ->
  ?max_schedules:int ->
  ?max_failures:int ->
  ?workers:int ->
  t ->
  dpor_report
(** Dynamic partial-order reduction (Flanagan–Godefroid with sleep sets)
    over the same schedule tree as {!explore_dfs}: explores at least one
    representative of every dependency-equivalence class of schedules, so
    on deterministic scenarios it reports the same set of distinct
    failure messages as a complete DFS while exploring strictly fewer
    schedules whenever any two quanta commute. Dependency is derived from
    the runtime's {!Sync_platform.Detrt.Obs} stream: two quanta conflict
    iff they touch a common synchronization object (or either performs a
    scheduler-global op). Waiter-handoff decisions are always fully
    expanded.

    [workers > 1] partitions the top-level backtrack frontier across that
    many domains (the E20 engine's domain plumbing); results merge
    deterministically. Scenarios that rely on process-global mutable
    registries (fault plans, the deadlock watchdog) must keep
    [workers = 1]. [max_schedules] is a shared budget across workers.

    @raise Failure if the scenario is not schedule-deterministic. *)

type shrink_report = {
  shrunk : Schedule.t;  (** canonical failing schedule *)
  message : string;  (** its failure message *)
  attempts : int;  (** replays spent *)
}

val shrink : ?max_steps:int -> ?budget:int -> t -> Schedule.t -> shrink_report
(** Greedy minimization of a failing schedule: shortest failing prefix,
    then zero out non-default choices to a fixpoint, within [budget]
    replays. @raise Invalid_argument if [failing] does not fail. *)
