lib/monitor/protected.mli: Monitor
