(* The deterministic scheduler (E18): real mechanism implementations
   under controlled interleavings. Covers the runtime itself
   (determinism, quiescence, deadlock and step-limit reporting), the
   exploration strategies (seeded random, PCT, bounded DFS), record /
   replay / shrink, and the headline reproduction: the footnote-3
   Figure 1 anomaly found and replayed from a printed seed on the real
   path-expression engine. *)

open Sync_platform
open Sync_detsched

let check_result name = function
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: %s" name msg

let sched_str v = Detsched.Schedule.to_string v.Detsched.outcome.schedule

let scen name =
  match Scenarios.find name with
  | Some e -> e.Scenarios.scen
  | None -> Alcotest.failf "scenario %s missing from the catalog" name

(* ------------------------------------------------------------------ *)
(* Runtime basics                                                      *)

(* With choose = first candidate, execution order is a pure function of
   the program: same journal every run. *)
let test_runtime_deterministic () =
  let exec () =
    let log = ref [] in
    let note x = log := x :: !log in
    ignore
      (Detrt.run ~choose:(fun _ -> 0) (fun () ->
           let m = Mutex.create () in
           let ps =
             List.init 3 (fun i ->
                 Process.spawn (fun () ->
                     Mutex.lock m;
                     note (Printf.sprintf "t%d" i);
                     Mutex.unlock m))
           in
           note "spawned";
           List.iter Process.join ps));
    List.rev !log
  in
  let a = exec () and b = exec () in
  Alcotest.(check (list string)) "identical journals" a b

(* The E22 fast paths must never engage inside a deterministic run:
   adaptive primitives resolve races with real atomics, outside the
   recorded scheduler's control. Even with the Fastpath flag forced on,
   primitives created under Detrt must come out deterministic, and the
   journal must replay exactly. *)
let test_fastpath_inert_under_detrt () =
  let exec () =
    let log = ref [] in
    let note x = log := x :: !log in
    ignore
      (Detrt.run ~choose:(fun _ -> 0) (fun () ->
           Fastpath.with_enabled (fun () ->
               Alcotest.(check bool) "fastpath inactive under Detrt" false
                 (Fastpath.active ());
               let m = Mutex.create () in
               (match m.Mutex.impl with
               | Mutex.Det _ -> ()
               | Mutex.Sys _ | Mutex.Fast _ | Mutex.Prim _ | Mutex.Queue _
               | Mutex.Swap _ ->
                 Alcotest.fail "mutex ignored the Detrt runtime");
               let s = Semaphore.Counting.create ~fairness:`Weak 1 in
               let ps =
                 List.init 3 (fun i ->
                     Process.spawn (fun () ->
                         Mutex.lock m;
                         Semaphore.Counting.p s;
                         note (Printf.sprintf "t%d" i);
                         Semaphore.Counting.v s;
                         Mutex.unlock m))
               in
               List.iter Process.join ps)));
    List.rev !log
  in
  let a = exec () and b = exec () in
  Alcotest.(check (list string)) "identical journals with the flag on" a b

let test_quiescence_orders_arrivals () =
  let log = ref [] in
  ignore
    (Detrt.run ~choose:(fun _ -> 0) (fun () ->
         let ps =
           List.init 3 (fun i ->
               let p = Process.spawn (fun () -> log := i :: !log) in
               Detrt.await_quiescence ();
               p)
         in
         List.iter Process.join ps));
  Alcotest.(check (list int)) "arrival order" [ 0; 1; 2 ] (List.rev !log)

let test_deadlock_reported () =
  let e = scen "deadlock-abba" in
  (* Steer both tasks to their first lock before either takes its
     second: DFS below proves such schedules exist; here seed search
     finds one quickly. *)
  let r = Detsched.sample ~runs:50 e in
  match r.Detsched.failure with
  | Some (_, v) ->
    let msg = Detsched.verdict_message v in
    if not (Astring.String.is_infix ~affix:"Deadlock" msg) then
      Alcotest.failf "expected a deadlock report, got: %s" msg
  | None -> Alcotest.fail "no deadlocking schedule found in 50 seeds"

let test_step_limit () =
  let sc =
    Detsched.scenario ~name:"spin" ~descr:"never terminates" (fun () ->
        { Detsched.body =
            (fun () ->
              let p =
                Process.spawn (fun () ->
                    while true do
                      Detrt.yield ()
                    done)
              in
              Process.join p);
          check = (fun () -> Ok ()) })
  in
  let v = Detsched.run ~max_steps:500 ~pick:(Detsched.random_pick ~seed:0) sc in
  match v.Detsched.verdict with
  | Ok () -> Alcotest.fail "runaway scenario passed"
  | Error msg ->
    if not (Astring.String.is_infix ~affix:"Step_limit" msg) then
      Alcotest.failf "expected Step_limit, got: %s" msg

let test_schedule_roundtrip () =
  let open Detsched.Schedule in
  let s =
    [| { alts = 3; chosen = 1 }; { alts = 2; chosen = 0 };
       { alts = 5; chosen = 4 } |]
  in
  Alcotest.(check string) "roundtrip" (to_string s)
    (to_string (of_string (to_string s)));
  Alcotest.(check string) "empty" "-" (to_string (of_string "-"))

(* ------------------------------------------------------------------ *)
(* The catalog under seeded random exploration: every run of every
   scenario must be reproducible from its seed, and the verdicts must
   match the catalog's expectations ([Fail] = reproduced anomaly). *)

let catalog_case (e : Scenarios.entry) () =
  let name = e.Scenarios.scen.Detsched.name in
  List.iter
    (fun seed ->
      let v1 = Detsched.run_random ~seed e.Scenarios.scen in
      let v2 = Detsched.run_random ~seed e.Scenarios.scen in
      Alcotest.(check string)
        (Printf.sprintf "%s seed %d: schedule reproducible" name seed)
        (sched_str v1) (sched_str v2);
      Alcotest.(check string)
        (Printf.sprintf "%s seed %d: verdict reproducible" name seed)
        (Detsched.verdict_message v1)
        (Detsched.verdict_message v2);
      match e.Scenarios.expect with
      | Scenarios.Pass ->
        check_result (Printf.sprintf "%s seed %d" name seed)
          v1.Detsched.verdict
      | Scenarios.Fail -> ())
    [ 1; 2; 3 ];
  (* [Fail] means exploration is supposed to find failing schedules —
     not that any particular seed fails. *)
  match e.Scenarios.expect with
  | Scenarios.Pass -> ()
  | Scenarios.Fail -> (
    match (Detsched.sample ~runs:50 e.Scenarios.scen).Detsched.failure with
    | Some _ -> ()
    | None ->
      Alcotest.failf "%s: no failing schedule among 50 random seeds" name)

(* ------------------------------------------------------------------ *)
(* Footnote 3: Figure 1 on the real path-expression engine admits the
   second writer ahead of the queued reader, violating the
   readers-priority policy it claims. The failing schedule prints with
   its seed and must replay byte-for-byte. *)

let test_fig1_anomaly_reproduced_and_replayed () =
  let sc = scen "rw-fig1" in
  let seed = 11 in
  let v = Detsched.run_random ~seed sc in
  (match v.Detsched.verdict with
  | Ok () -> Alcotest.fail "Figure 1 writer-handoff unexpectedly passed"
  | Error msg ->
    if not (Astring.String.is_infix ~affix:"writer-first" msg) then
      Alcotest.failf "expected the W2-overtakes-R anomaly, got: %s" msg;
    Printf.printf
      "\n  footnote-3 anomaly (rw-fig1): seed %d\n  verdict: %s\n  \
       schedule: %s\n  replay: Detsched.run_random ~seed:%d, or replay the \
       schedule string\n"
      seed msg (sched_str v) seed);
  (* Second run from the same printed seed: identical schedule, identical
     verdict. *)
  let v' = Detsched.run_random ~seed sc in
  Alcotest.(check string) "same schedule from printed seed" (sched_str v)
    (sched_str v');
  Alcotest.(check string) "same verdict from printed seed"
    (Detsched.verdict_message v)
    (Detsched.verdict_message v');
  (* And byte-for-byte replay from the recorded schedule itself. *)
  let r = Detsched.replay sc v.Detsched.outcome.schedule in
  Alcotest.(check string) "replayed schedule identical" (sched_str v)
    (sched_str r);
  Alcotest.(check string) "replayed verdict identical"
    (Detsched.verdict_message v)
    (Detsched.verdict_message r)

(* The same staging on correct engines: Figure 2 (writers-priority, as
   documented), monitor and serializer readers-priority all satisfy
   their declared policy on every sampled schedule. *)
let test_correct_policies_hold () =
  List.iter
    (fun name ->
      let r = Detsched.sample ~runs:25 (scen name) in
      match r.Detsched.failure with
      | None -> ()
      | Some (seed, v) ->
        Alcotest.failf "%s failed at seed %d: %s" name seed
          (Detsched.verdict_message v))
    [ "rw-fig2"; "rw-mon"; "rw-ser" ]

(* ------------------------------------------------------------------ *)
(* PCT fuzzing finds the Figure 1 anomaly too, and leaves the correct
   engines alone. *)

let test_pct_strategy () =
  let v = Detsched.run_pct ~seed:7 (scen "rw-fig1") in
  if Detsched.verdict_ok v then
    Alcotest.fail "PCT run of rw-fig1 unexpectedly passed";
  let r = Detsched.sample ~runs:10 ~strategy:`Pct (scen "rw-mon") in
  match r.Detsched.failure with
  | None -> ()
  | Some (seed, v) ->
    Alcotest.failf "rw-mon failed under PCT seed %d: %s" seed
      (Detsched.verdict_message v)

(* ------------------------------------------------------------------ *)
(* Bounded DFS                                                          *)

(* The deadlock demo is small enough to enumerate completely: the tree
   must contain both deadlocking and clean schedules. *)
let test_dfs_deadlock_complete () =
  let r = Detsched.explore_dfs ~max_schedules:100_000 (scen "deadlock-abba") in
  if not r.Detsched.complete then
    Alcotest.failf "expected complete enumeration, stopped at %d schedules"
      r.Detsched.explored;
  if r.Detsched.failures = [] then
    Alcotest.fail "DFS did not find the deadlock";
  if List.length r.Detsched.failures >= r.Detsched.explored then
    Alcotest.fail "DFS found no deadlock-free schedule";
  List.iter
    (fun (_, msg) ->
      if not (Astring.String.is_infix ~affix:"Deadlock" msg) then
        Alcotest.failf "non-deadlock failure in the lock demo: %s" msg)
    r.Detsched.failures

(* A capped DFS over the bounded buffer: no explored schedule may break
   conservation or per-producer FIFO. *)
let test_dfs_bb_no_failures () =
  let r =
    Detsched.explore_dfs ~max_schedules:150 ~max_failures:1 (scen "bb-sem")
  in
  (match r.Detsched.failures with
  | [] -> ()
  | (s, msg) :: _ ->
    Alcotest.failf "bb-sem failed on schedule %s: %s"
      (Detsched.Schedule.to_string s) msg);
  if r.Detsched.explored = 0 then Alcotest.fail "DFS explored nothing"

(* Every branch of the fig1 handoff tree fails: the anomaly is a policy
   property of the engine, not of one lucky interleaving. *)
let test_dfs_fig1_all_fail () =
  let r =
    Detsched.explore_dfs ~max_schedules:80 ~max_failures:80 (scen "rw-fig1")
  in
  Alcotest.(check int)
    "every explored schedule fails" r.Detsched.explored
    (List.length r.Detsched.failures)

(* ------------------------------------------------------------------ *)
(* Shrinking                                                            *)

let test_shrink_fig1 () =
  let sc = scen "rw-fig1" in
  let v = Detsched.run_random ~seed:11 sc in
  if Detsched.verdict_ok v then Alcotest.fail "seed 11 should fail";
  let orig = v.Detsched.outcome.schedule in
  let s = Detsched.shrink sc orig in
  (* Replaying with default choices can take a longer path, so the raw
     decision count is not monotone — the number of non-default choices
     (what a human reads) is. *)
  let nonzero sched =
    Array.fold_left
      (fun n c -> if c <> 0 then n + 1 else n)
      0
      (Detsched.Schedule.choices sched)
  in
  if nonzero s.Detsched.shrunk > nonzero orig then
    Alcotest.failf "shrink grew the schedule: %d -> %d non-default decisions"
      (nonzero orig)
      (nonzero s.Detsched.shrunk);
  (* The shrunk schedule still fails on strict replay. *)
  let r = Detsched.replay sc s.Detsched.shrunk in
  if Detsched.verdict_ok r then
    Alcotest.fail "shrunk schedule no longer fails";
  Printf.printf "\n  shrink: %d -> %d non-default decisions (%d replays)\n"
    (nonzero orig)
    (nonzero s.Detsched.shrunk)
    s.Detsched.attempts

(* ------------------------------------------------------------------ *)
(* FCFS under both signalling disciplines, deterministically: the Hoare
   monitor's condition queue and the Mesa ticket loop must both drain
   the contenders in exact arrival order on every sampled schedule. *)

let fcfs_det_case name () =
  let r = Detsched.sample ~runs:25 (scen name) in
  match r.Detsched.failure with
  | None -> ()
  | Some (seed, v) ->
    Alcotest.failf "%s failed at seed %d: %s" name seed
      (Detsched.verdict_message v)

(* The Mesa ticket monitor must also hold up under real preemptive
   threads (the classic harness with settle delays). *)
let test_fcfs_mesa_threaded () =
  check_result "fcfs-mon-mesa (threads)"
    (Sync_problems.Fcfs_harness.verify (module Sync_problems.Fcfs_mon.Mesa))

let () =
  let catalog =
    List.map
      (fun (e : Scenarios.entry) ->
        Alcotest.test_case e.Scenarios.scen.Detsched.name `Quick
          (catalog_case e))
      Scenarios.all
  in
  Alcotest.run "detsched"
    [ ( "runtime",
        [ Alcotest.test_case "journals deterministic" `Quick
            test_runtime_deterministic;
          Alcotest.test_case "fastpath inert under detrt" `Quick
            test_fastpath_inert_under_detrt;
          Alcotest.test_case "quiescence orders arrivals" `Quick
            test_quiescence_orders_arrivals;
          Alcotest.test_case "deadlock reported" `Quick test_deadlock_reported;
          Alcotest.test_case "step limit reported" `Quick test_step_limit;
          Alcotest.test_case "schedule string roundtrip" `Quick
            test_schedule_roundtrip ] );
      ("catalog-random", catalog);
      ( "footnote-3",
        [ Alcotest.test_case "fig1 anomaly reproduced + replayed" `Quick
            test_fig1_anomaly_reproduced_and_replayed;
          Alcotest.test_case "correct policies hold" `Quick
            test_correct_policies_hold;
          Alcotest.test_case "pct finds it too" `Quick test_pct_strategy ] );
      ( "dfs",
        [ Alcotest.test_case "deadlock tree enumerated" `Quick
            test_dfs_deadlock_complete;
          Alcotest.test_case "bounded buffer clean" `Quick
            test_dfs_bb_no_failures;
          Alcotest.test_case "fig1 fails on every branch" `Quick
            test_dfs_fig1_all_fail ] );
      ("shrink", [ Alcotest.test_case "fig1 shrinks" `Quick test_shrink_fig1 ]);
      ( "fcfs-disciplines",
        [ Alcotest.test_case "hoare (det)" `Quick
            (fcfs_det_case "fcfs-mon-hoare");
          Alcotest.test_case "mesa (det)" `Quick (fcfs_det_case "fcfs-mon-mesa");
          Alcotest.test_case "semaphore (det)" `Quick
            (fcfs_det_case "fcfs-sem");
          Alcotest.test_case "mesa (threads)" `Quick test_fcfs_mesa_threaded ]
      ) ]
