type backend = [ `Thread | `Domain | `Det ]

type handle = T of Thread.t | D of unit Domain.t | F of Detrt.task

type t = { handle : handle; error : exn option ref; error_mutex : Mutex.t }

let default_backend : backend ref = ref `Thread

let mode () : backend = if Detrt.active () then `Det else !default_backend

let spawn ?name ?backend f =
  let backend =
    (* Inside a deterministic run every process must be a virtual task:
       a real thread would escape the controlled schedule (and a join on
       it from a fiber would wedge the only carrier thread). *)
    if Detrt.active () then `Det
    else Option.value backend ~default:!default_backend
  in
  let error = ref None in
  let error_mutex = Mutex.create () in
  let body () =
    (match name with
    | Some n when Deadlock.enabled () && backend <> `Det ->
      (* Det tasks carry their name natively; threads/domains tell the
         watchdog so cycle reports name the blocked processes. *)
      Deadlock.name_self n
    | _ -> ());
    try f ()
    with e ->
      Mutex.lock error_mutex;
      error := Some e;
      Mutex.unlock error_mutex
  in
  let handle =
    match backend with
    | `Thread -> T (Thread.create body ())
    | `Domain -> D (Domain.spawn body)
    | `Det -> F (Detrt.spawn ?name body)
  in
  { handle; error; error_mutex }

let join t =
  (match t.handle with
  | T th -> Thread.join th
  | D d -> Domain.join d
  | F task -> Detrt.join task);
  Mutex.lock t.error_mutex;
  let err = !(t.error) in
  Mutex.unlock t.error_mutex;
  match err with None -> () | Some e -> raise e

let run_all ?backend fs =
  let ts = List.map (fun f -> spawn ?backend f) fs in
  let first_error = ref None in
  List.iter
    (fun t ->
      try join t
      with e -> if Option.is_none !first_error then first_error := Some e)
    ts;
  match !first_error with None -> () | Some e -> raise e

let parallelism_available () = Domain.recommended_domain_count ()
