(* The same core invariants under OCaml 5 domains (true parallelism),
   exercising the repro band's requirement: the mechanisms must be
   correct for parallel execution, not only for interleaved threads. *)

open Sync_platform

let check_int = Alcotest.(check int)

let run_domains fs = Process.run_all ~backend:`Domain fs

let test_semaphore_exclusion () =
  let s = Semaphore.Counting.create 1 in
  let g = Testutil.Gauge.create () in
  let worker () =
    for _ = 1 to 200 do
      Semaphore.Counting.p s;
      Testutil.Gauge.enter g;
      Domain.cpu_relax ();
      Testutil.Gauge.leave g;
      Semaphore.Counting.v s
    done
  in
  run_domains [ worker; worker; worker ];
  check_int "exclusive" 1 (Testutil.Gauge.max g)

let test_monitor_exclusion () =
  let m = Sync_monitor.Monitor.create () in
  let g = Testutil.Gauge.create () in
  let worker () =
    for _ = 1 to 200 do
      Sync_monitor.Monitor.with_monitor m (fun () ->
          Testutil.Gauge.enter g;
          Domain.cpu_relax ();
          Testutil.Gauge.leave g)
    done
  in
  run_domains [ worker; worker; worker ];
  check_int "exclusive" 1 (Testutil.Gauge.max g)

let test_serializer_exclusion () =
  let s = Sync_serializer.Serializer.create () in
  let g = Testutil.Gauge.create () in
  let worker () =
    for _ = 1 to 200 do
      Sync_serializer.Serializer.with_serializer s (fun () ->
          Testutil.Gauge.enter g;
          Domain.cpu_relax ();
          Testutil.Gauge.leave g)
    done
  in
  run_domains [ worker; worker; worker ];
  check_int "exclusive" 1 (Testutil.Gauge.max g)

let test_pathexpr_exclusion () =
  let p = Sync_pathexpr.Pathexpr.of_string "path a , b end" in
  let g = Testutil.Gauge.create () in
  let worker op () =
    for _ = 1 to 100 do
      Sync_pathexpr.Pathexpr.run p op (fun () ->
          Testutil.Gauge.enter g;
          Domain.cpu_relax ();
          Testutil.Gauge.leave g)
    done
  in
  run_domains [ worker "a"; worker "b" ];
  check_int "exclusive" 1 (Testutil.Gauge.max g)

let test_monitor_producer_consumer () =
  let ring = Sync_resources.Ring.create ~work:10 4 in
  let buffer =
    Sync_problems.Bb_mon.create ~capacity:4
      ~put:(fun ~pid:_ v -> Sync_resources.Ring.put ring v)
      ~get:(fun ~pid:_ -> Sync_resources.Ring.get ring)
  in
  let n = 300 in
  let sum = Atomic.make 0 in
  run_domains
    [ (fun () ->
        for k = 1 to n do
          Sync_problems.Bb_mon.put buffer ~pid:0 k
        done);
      (fun () ->
        for _ = 1 to n do
          ignore
            (Atomic.fetch_and_add sum (Sync_problems.Bb_mon.get buffer ~pid:1))
        done) ];
  check_int "all items transferred" (n * (n + 1) / 2) (Atomic.get sum)

let test_csp_rendezvous () =
  let net = Sync_csp.Csp.network () in
  let ch = Sync_csp.Csp.Channel.create net in
  let sum = Atomic.make 0 in
  run_domains
    [ (fun () -> for i = 1 to 100 do Sync_csp.Csp.send ch i done);
      (fun () ->
        for _ = 1 to 100 do
          ignore (Atomic.fetch_and_add sum (Sync_csp.Csp.recv ch))
        done) ];
  check_int "all values received" 5050 (Atomic.get sum)

let solutions_bb : (string * (module Sync_problems.Bb_intf.S)) list =
  [ ("semaphore", (module Sync_problems.Bb_sem));
    ("monitor", (module Sync_problems.Bb_mon));
    ("serializer", (module Sync_problems.Bb_ser));
    ("pathexpr", (module Sync_problems.Bb_path));
    ("ccr", (module Sync_problems.Bb_ccr));
    ("eventcount", (module Sync_problems.Bb_evc)) ]

let bb_domain_tests =
  List.map
    (fun (name, m) ->
      Alcotest.test_case name `Quick (fun () ->
          match
            Sync_problems.Bb_harness.verify ~backend:`Domain ~capacity:3
              ~producers:2 ~consumers:2 ~items_per_producer:20 m
          with
          | Ok () -> ()
          | Error msg -> Alcotest.failf "%s: %s" name msg))
    solutions_bb

let rw_domain_tests =
  List.map
    (fun (name, m) ->
      Alcotest.test_case name `Quick (fun () ->
          match
            Sync_problems.Rw_harness.verify_exclusion ~backend:`Domain
              ~readers:3 ~writers:2 ~reads_each:20 ~writes_each:6 m
          with
          | Ok () -> ()
          | Error msg -> Alcotest.failf "%s: %s" name msg))
    [ ("monitor", (module Sync_problems.Rw_mon.Readers_prio
         : Sync_problems.Rw_intf.S));
      ("serializer", (module Sync_problems.Rw_ser.Readers_prio));
      ("pathexpr-fig2", (module Sync_problems.Rw_path.Fig2));
      ("ccr", (module Sync_problems.Rw_ccr.Readers_prio));
      ("csp", (module Sync_problems.Rw_csp.Readers_prio)) ]

(* The E20 engine on real domains: a short closed-loop run must make
   progress, lose no recorded operation, and leave the self-checking
   resource happy (any exclusion violation records as a failure). *)
let test_loadgen_on_domains () =
  match
    Sync_workload.Target.create ~problem:"bounded-buffer" ~mechanism:"monitor"
      ()
  with
  | Error e -> Alcotest.failf "target: %s" e
  | Ok instance ->
    let cfg =
      { Sync_workload.Loadgen.workers = 3; backend = `Domain;
        duration_ms = 80; warmup_ms = 20;
        mode = Sync_workload.Loadgen.Closed; seed = 11; think_us = 0 }
    in
    let report = Sync_workload.Loadgen.run instance cfg in
    let s = report.Sync_workload.Report.summary in
    Alcotest.(check bool) "made progress" true
      (s.Sync_metrics.Summary.total_ops > 0);
    check_int "no failures" 0 s.Sync_metrics.Summary.total_failures;
    (* Cycle targets keep per-worker put/get balance, so the merged
       counts differ by at most the worker count *)
    (match s.Sync_metrics.Summary.per_op with
    | [ put; get ] ->
      Alcotest.(check bool) "puts ~ gets" true
        (abs (put.Sync_metrics.Summary.count - get.Sync_metrics.Summary.count)
         <= cfg.Sync_workload.Loadgen.workers)
    | _ -> Alcotest.fail "expected put/get ops")

(* The E22 fast tier under true parallelism: the adaptive mutex and the
   fetch-and-add weak semaphore must keep their invariants across a
   4-domain storm, where CAS races and parked handoffs actually occur. *)
let test_fast_mutex_exclusion_domains () =
  let m = Fastpath.with_enabled (fun () -> Mutex.create ()) in
  let g = Testutil.Gauge.create () in
  let count = ref 0 in
  let iters = 500 in
  let worker () =
    for _ = 1 to iters do
      Mutex.lock m;
      Testutil.Gauge.enter g;
      incr count;
      Domain.cpu_relax ();
      Testutil.Gauge.leave g;
      Mutex.unlock m
    done
  in
  run_domains [ worker; worker; worker; worker ];
  check_int "exclusive" 1 (Testutil.Gauge.max g);
  check_int "no lost increments" (4 * iters) !count

let test_fast_weak_sem_domains () =
  let k = 2 in
  let s =
    Fastpath.with_enabled (fun () ->
        Semaphore.Counting.create ~fairness:`Weak k)
  in
  let g = Testutil.Gauge.create () in
  let worker () =
    for _ = 1 to 500 do
      Semaphore.Counting.p s;
      Testutil.Gauge.enter g;
      Domain.cpu_relax ();
      Testutil.Gauge.leave g;
      Semaphore.Counting.v s
    done
  in
  run_domains [ worker; worker; worker; worker ];
  Alcotest.(check bool) "at most k holders" true (Testutil.Gauge.max g <= k);
  check_int "units conserved" k (Semaphore.Counting.value s)

(* A fast-tier workload cell end to end: the full stack (Fastring,
   adaptive mutex, fast conditions) must record zero failures — the
   self-checking resource turns any exclusion slip into a failure. *)
let test_loadgen_fast_tier_on_domains () =
  match
    Sync_workload.Target.create ~tier:`Fast ~problem:"bounded-buffer"
      ~mechanism:"eventcount" ()
  with
  | Error e -> Alcotest.failf "target: %s" e
  | Ok instance ->
    Alcotest.(check string) "tier recorded" "fast"
      instance.Sync_workload.Target.tier;
    let cfg =
      { Sync_workload.Loadgen.workers = 4; backend = `Domain;
        duration_ms = 80; warmup_ms = 20;
        mode = Sync_workload.Loadgen.Closed; seed = 11; think_us = 0 }
    in
    let report = Sync_workload.Loadgen.run instance cfg in
    let s = report.Sync_workload.Report.summary in
    Alcotest.(check string) "report carries the tier" "fast"
      report.Sync_workload.Report.tier;
    Alcotest.(check bool) "made progress" true
      (s.Sync_metrics.Summary.total_ops > 0);
    check_int "no failures" 0 s.Sync_metrics.Summary.total_failures

let () =
  Alcotest.run "domains"
    [ ( "parallel-invariants",
        [ Alcotest.test_case "semaphore exclusion" `Quick
            test_semaphore_exclusion;
          Alcotest.test_case "monitor exclusion" `Quick test_monitor_exclusion;
          Alcotest.test_case "serializer exclusion" `Quick
            test_serializer_exclusion;
          Alcotest.test_case "pathexpr exclusion" `Quick
            test_pathexpr_exclusion;
          Alcotest.test_case "monitor producer/consumer" `Quick
            test_monitor_producer_consumer;
          Alcotest.test_case "csp rendezvous" `Quick test_csp_rendezvous ] );
      ("bounded-buffer-on-domains", bb_domain_tests);
      ("readers-writers-on-domains", rw_domain_tests);
      ( "load-engine-on-domains",
        [ Alcotest.test_case "closed-loop smoke" `Quick
            test_loadgen_on_domains ] );
      ( "fast-tier-on-domains",
        [ Alcotest.test_case "fast mutex exclusion" `Quick
            test_fast_mutex_exclusion_domains;
          Alcotest.test_case "fast weak semaphore conservation" `Quick
            test_fast_weak_sem_domains;
          Alcotest.test_case "fast-tier closed-loop cell" `Quick
            test_loadgen_fast_tier_on_domains ] ) ]
