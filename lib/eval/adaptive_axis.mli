(** The E27 self-tuning axis: adaptive tier vs every static tier.

    For each problem x arrival-process x domain-count cell the same
    load target runs on every static platform tier and once on the
    adaptive tier ({!Sync_workload.Target.tier} [`Adaptive]), where a
    {!Sync_adaptive.Controller} retiers the hot-swappable mutex sites
    live from the contention probes. Probe tracing is enabled for every
    row — the controller needs it, so static rows pay the same
    observation overhead and tier-to-tier ratios stay honest.

    Claims (measured cells only): {!never_worst} — the adaptive row
    never falls below the worst static tier (blocking CI gate) — and
    {!win_rate} — the fraction of cells where it matches or beats the
    best static tier. *)

type status = Supported | Failed of string

type row = {
  problem : string;
  mechanism : string;
  arrival : Sync_workload.Loadgen.arrival;
  domains : int;
  tier : string;  (** {!Sync_workload.Target.tier_name} *)
  status : status;
  throughput_per_s : float;
  p50_ns : int;
  p99_ns : int;
  flips : int;  (** controller flips during the run; 0 on static rows *)
}

type t = { rows : row list }

val empty : t

val is_empty : t -> bool

type spec = {
  cells : (string * string) list;  (** (problem, mechanism) pairs *)
  static_tiers : Sync_workload.Target.tier list;
  arrivals : Sync_workload.Loadgen.arrival list;
  domains : int list;
  rate_per_s : float;  (** open-loop aggregate arrival rate *)
  duration_ms : int;
  warmup_ms : int;
  seed : int;
  never_worst_slack : float;
      (** noise allowance on {!never_worst}: adaptive must reach this
          fraction of the worst static tier's throughput *)
  win_slack : float;
      (** allowance on {!win_rate}: reaching this fraction of the best
          static tier counts as a match *)
}

val default_spec : unit -> spec
(** Bounded buffer / readers-writers / alarm-wheel under poisson,
    diurnal and bursty arrivals at 4 domains; default / fast /
    MCS-queue static tiers; short [SYNC_LOAD_MS]-scalable windows. *)

val run : ?progress:(row -> unit) -> spec -> t
(** Execute the grid; [progress] sees each row as it lands. *)

val all_ok : t -> bool

val status_string : status -> string

val never_worst : ?slack:float -> t -> bool
(** [true] iff at least one cell measured and the adaptive row reaches
    [slack] (default 0.85) of the worst static tier's throughput in
    every fully measured cell. *)

val win_rate : ?slack:float -> t -> float
(** Fraction of fully measured cells where the adaptive row reaches
    [slack] (default 0.95) of the best static tier's throughput. *)

val total_flips : t -> int

val pp : Format.formatter -> t -> unit

val rows_to_json : t -> Sync_metrics.Emit.t
(** Rows plus claim verdicts — the scorecard embedding. *)

val to_json : spec -> t -> Sync_metrics.Emit.t
(** Full experiment envelope for a standalone E27 artifact. *)
