(* Fault-injection regression tests (E19, tier 1 in the small): an
   abort-matrix smoke over the bounded buffer, a seeded failing schedule
   reproduced and replayed byte-for-byte, and the deadlock watchdog
   naming the AB/BA cycle. The full matrix runs as [bloom_eval faults]. *)

open Sync_platform
module D = Sync_detsched.Detsched

let check_bool = Alcotest.(check bool)

let check_string = Alcotest.(check string)

let has ~affix s = Astring.String.is_infix ~affix s

(* ------------------------------------------------------------------ *)
(* Abort-matrix smoke                                                 *)

let smoke_plan () =
  Fault.plan
    [ ("bb.put.body", Fault.Nth 2); ("bb.get.body", Fault.Every 7);
      ("waitq.pre-wait", Fault.Every 5); ("semaphore.pre-wait", Fault.Every 5)
    ]

let bb_smoke : (string * (module Sync_problems.Bb_intf.S)) list =
  [ ("semaphore", (module Sync_problems.Bb_sem));
    ("monitor", (module Sync_problems.Bb_mon)) ]

let test_abort_smoke () =
  List.iter
    (fun (name, (module B : Sync_problems.Bb_intf.S)) ->
      let r =
        Fault.with_plan (smoke_plan ()) (fun () ->
            Sync_problems.Bb_harness.run_abort
              (module B)
              ~capacity:3 ~producers:2 ~consumers:2 ~items_per_producer:10 ())
      in
      match Sync_problems.Bb_harness.check_abort ~producers:2 r with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s did not recover: %s" name m)
    bb_smoke

(* ------------------------------------------------------------------ *)
(* Seeded failing schedule: reproduce, then replay byte-for-byte       *)

(* A deliberately non-compensating holder: the injected abort lands
   between P and V and the token is never returned, so the second worker
   blocks forever and the runtime reports a deadlock. This is the
   counterexample the compensating mechanisms are tested against. *)
let lost_token =
  D.scenario ~name:"lost-token"
    ~descr:"abort between P and V with no compensation loses the token"
    (fun () ->
      let plan = Fault.plan [ ("toy.hold.body", Fault.Nth 1) ] in
      { D.body =
          (fun () ->
            Fault.with_plan plan (fun () ->
                let sem = Semaphore.Counting.create 1 in
                let worker i =
                  Process.spawn ~name:(Printf.sprintf "worker-%d" i)
                    (fun () ->
                      Semaphore.Counting.p sem;
                      match Fault.site "toy.hold.body" with
                      | () -> Semaphore.Counting.v sem
                      | exception Fault.Injected _ -> ())
                in
                List.iter Process.join [ worker 0; worker 1 ]));
        check = (fun () -> Ok ()) })

let test_seeded_failure_replays () =
  let v = D.run_random ~max_steps:10_000 ~seed:11 lost_token in
  check_bool "seeded run fails" false (D.verdict_ok v);
  let msg = D.verdict_message v in
  check_bool "reports a deadlock" true
    (has ~affix:"eadlock" msg);
  let sched = v.D.outcome.D.schedule in
  let v2 = D.replay ~max_steps:10_000 lost_token sched in
  check_bool "replay fails too" false (D.verdict_ok v2);
  check_string "same failure message" msg (D.verdict_message v2);
  check_string "same schedule"
    (D.Schedule.to_string sched)
    (D.Schedule.to_string v2.D.outcome.D.schedule)

(* ------------------------------------------------------------------ *)
(* The watchdog names the AB/BA cycle                                  *)

let test_watchdog_names_abba () =
  let scen =
    match Sync_detsched.Scenarios.find "deadlock-abba" with
    | Some e -> e.Sync_detsched.Scenarios.scen
    | None -> Alcotest.fail "deadlock-abba scenario missing"
  in
  (* Find a deadlocking schedule first (watchdog off, as in E18)... *)
  let r = D.explore_dfs ~max_steps:5_000 ~max_schedules:400 scen in
  let deadlocking =
    List.filter (fun (_, m) -> has ~affix:"eadlock" m) r.D.failures
  in
  check_bool "DFS finds deadlocking schedules" true (deadlocking <> []);
  let sched, _ = List.hd deadlocking in
  (* ... then replay it with the watchdog on: the report must name the
     circular wait, not just the stuck tasks. *)
  Deadlock.enable ();
  Fun.protect ~finally:Deadlock.disable (fun () ->
      let v = D.replay ~max_steps:5_000 scen sched in
      check_bool "replay deadlocks" false (D.verdict_ok v);
      let msg = D.verdict_message v in
      match Astring.String.cut ~sep:"wait-for cycle:" msg with
      | None -> Alcotest.failf "no cycle in the report: %s" msg
      | Some (_, cycle) ->
        check_bool "cycle names locker-ab" true (has ~affix:"locker-ab" cycle);
        check_bool "cycle names locker-ba" true (has ~affix:"locker-ba" cycle))

let () =
  Alcotest.run "faults"
    [ ( "abort-matrix",
        [ Alcotest.test_case "bounded-buffer smoke" `Quick test_abort_smoke ] );
      ( "replay",
        [ Alcotest.test_case "seeded failure replays byte-for-byte" `Quick
            test_seeded_failure_replays ] );
      ( "watchdog",
        [ Alcotest.test_case "names the AB/BA cycle" `Quick
            test_watchdog_names_abba ] ) ]
