(** The bloom_serve wire protocol (E24): length-prefixed binary frames
    over a Unix-domain or TCP stream.

    Every frame is a 4-byte big-endian payload length followed by the
    payload; payloads above {!max_frame} bytes are rejected at the
    framing layer (a server must not allocate attacker-sized buffers).
    Request payloads carry a one-byte version, a one-byte opcode, and
    the client's {e deadline budget} — a relative nanosecond allowance
    the server turns into an absolute deadline on arrival and threads
    through every blocking acquire ([Semaphore.acquire_for],
    [Mutex.try_lock_for], [Condition.wait_for]); an exhausted budget
    comes back as a typed {!reply} instead of an unbounded stall.

    Encoding and decoding are pure string functions so the codec can be
    property-tested without sockets (see test_serve). *)

(** One request against a served Bloom problem. *)
type req =
  | Ping  (** health check; always succeeds *)
  | Q_put of string  (** bounded buffer as a queue service: enqueue *)
  | Q_get  (** dequeue *)
  | S_seek of int  (** disk-head scheduler: move the head to a track *)
  | T_sleep of int  (** alarm clock: sleep for [n] virtual ticks *)
  | K_get of string  (** readers-writers as a KV store: read a key *)
  | K_put of string * string  (** write a key *)

(** Typed server reply. Every admission or deadline failure is explicit
    — the overload story is "shed with a retry hint", never "hang". *)
type reply =
  | Ok of string
  | Overloaded of { retry_after_ms : int }
      (** admission controller shed the request; back off and retry *)
  | Deadline_exceeded
      (** the propagated deadline expired inside a blocking acquire *)
  | Bad_request of string
  | Shutting_down  (** server is draining; reconnect elsewhere/later *)

val max_frame : int
(** Largest accepted payload (65536 bytes). *)

val problem_of_req : req -> string
(** Admission-bucket key: ["ping"], ["queue"], ["sched"], ["timer"] or
    ["kv"]. *)

val op_name : req -> string
(** Per-op label for latency recording and request trace spans. *)

val encode_request : deadline_ns:int64 -> req -> string
(** Unframed request payload. [deadline_ns] is the relative budget; 0
    means "use the server's default budget". *)

val decode_request : string -> (int64 * req, string) result

val encode_reply : reply -> string

val decode_reply : string -> (reply, string) result

(** Why {!read_frame} stopped without a frame. *)
type read_error =
  | Eof  (** clean close at a frame boundary *)
  | Truncated  (** connection died mid-frame (chaos, crash, reset) *)
  | Oversized of int  (** advertised length beyond {!max_frame} *)
  | Timeout  (** the socket's receive timeout (SO_RCVTIMEO) fired *)
  | Conn_error of string  (** any other socket-level failure *)

val read_error_to_string : read_error -> string

val read_frame : Unix.file_descr -> (string, read_error) result
(** Read one complete frame (blocking; honours the fd's receive
    timeout). Never raises on connection failure — resets map to
    {!Truncated}/{!Conn_error} so callers always see a typed outcome. *)

val write_frame : Unix.file_descr -> string -> unit
(** Frame and send the whole payload.
    @raise Invalid_argument beyond {!max_frame}.
    @raise Unix.Unix_error on connection failure. *)
