open Sync_platform
open Sync_metrics
module Client = Sync_serve.Client
module Wire = Sync_serve.Wire
module Proc = Sync_serve.Proc

type problem = [ `Queue | `Sched | `Timer | `Kv | `Mix ]

let problem_of_string = function
  | "queue" -> Ok `Queue
  | "sched" -> Ok `Sched
  | "timer" -> Ok `Timer
  | "kv" -> Ok `Kv
  | "mix" -> Ok `Mix
  | s -> Error (Printf.sprintf "unknown serve problem %S (queue|sched|timer|kv|mix)" s)

let problem_to_string = function
  | `Queue -> "queue"
  | `Sched -> "sched"
  | `Timer -> "timer"
  | `Kv -> "kv"
  | `Mix -> "mix"

type config = {
  connections : int;
  rate_per_s : float;
  arrival : Loadgen.arrival;
  duration_ms : int;
  warmup_ms : int;
  seed : int;
  problem : problem;
  deadline_ns : int64;
  churn_every : int;
  backoff_base_ms : int;
  backoff_cap_ms : int;
  max_retries : int;
}

let default_config =
  { connections = 8;
    rate_per_s = 400.0;
    arrival = Loadgen.Poisson;
    duration_ms = 1000;
    warmup_ms = 200;
    seed = 42;
    problem = `Mix;
    deadline_ns = 50_000_000L;
    churn_every = 64;
    backoff_base_ms = 2;
    backoff_cap_ms = 200;
    max_retries = 6 }

type outcome = {
  ok : int;
  overloaded : int;
  deadline : int;
  conn_failed : int;
  bad : int;
  retries : int;
  reconnects : int;
  hung : int;
}

let outcome_to_json o =
  Emit.Obj
    [ ("ok", Emit.Int o.ok);
      ("overloaded", Emit.Int o.overloaded);
      ("deadline", Emit.Int o.deadline);
      ("conn_failed", Emit.Int o.conn_failed);
      ("bad", Emit.Int o.bad);
      ("retries", Emit.Int o.retries);
      ("reconnects", Emit.Int o.reconnects);
      ("hung", Emit.Int o.hung) ]

(* Op mixes per served problem. Queue alternates put/get so the service
   queue neither drains dry nor fills to capacity systematically. *)
let ops_of_problem = function
  | `Queue -> [| "put"; "get" |]
  | `Sched -> [| "seek" |]
  | `Timer -> [| "sleep" |]
  | `Kv -> [| "kv.get"; "kv.put" |]
  | `Mix -> [| "put"; "get"; "seek"; "sleep"; "kv.get"; "kv.put" |]

let gen_request ~rng ~op_name ~pid ~n =
  match op_name with
  | "put" -> Wire.Q_put (Printf.sprintf "c%d-%d" pid n)
  | "get" -> Wire.Q_get
  | "seek" -> Wire.S_seek (Prng.int rng 256)
  | "sleep" -> Wire.T_sleep (1 + Prng.int rng 3)
  | "kv.get" -> Wire.K_get (Printf.sprintf "k%d" (Prng.int rng 64))
  | "kv.put" ->
    Wire.K_put (Printf.sprintf "k%d" (Prng.int rng 64), Printf.sprintf "v%d" n)
  | _ -> Wire.Ping

(* Per-actor mutable tallies, merged after join (share-nothing, like
   the per-worker recorders). *)
type tally = {
  mutable t_ok : int;
  mutable t_over : int;
  mutable t_dead : int;
  mutable t_conn : int;
  mutable t_bad : int;
  mutable t_retries : int;
  mutable t_reconnects : int;
  mutable t_done : bool;
  mutable t_ok_marks : int; (* ok count sampled at [mark] (drill phases) *)
}

let terminal = function
  | Ok (Wire.Ok _) -> `Ok
  | Ok (Wire.Overloaded _) -> `Over
  | Ok Wire.Deadline_exceeded -> `Dead
  | Ok (Wire.Bad_request _) | Ok Wire.Shutting_down -> `Bad
  | Error `Timeout -> `Dead
  | Error `Closed | Error (`Fail _) -> `Conn

let run_with_mark ~sockaddr ~mark cfg =
  if cfg.connections < 1 then
    invalid_arg "Serve_driver.run: connections must be >= 1";
  if cfg.rate_per_s <= 0.0 then
    invalid_arg "Serve_driver.run: rate must be positive";
  (* A chaos-reset or crashed daemon means writes to dead sockets; the
     driver must see EPIPE as `Closed, not die. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let op_names = ops_of_problem cfg.problem in
  let nops = Array.length op_names in
  let op_index =
    let tbl = Hashtbl.create 8 in
    Array.iteri (fun i n -> Hashtbl.replace tbl n i) op_names;
    fun n -> Hashtbl.find tbl n
  in
  let phase = Atomic.make 0 (* 0 warmup, 1 steady, 2 finished *) in
  let recorders =
    Array.init cfg.connections (fun _ ->
        [| Recorder.create ~ops:op_names (); Recorder.create ~ops:op_names () |])
  in
  let tallies =
    Array.init cfg.connections (fun _ ->
        { t_ok = 0; t_over = 0; t_dead = 0; t_conn = 0; t_bad = 0;
          t_retries = 0; t_reconnects = 0; t_done = false; t_ok_marks = 0 })
  in
  let base_rng = Prng.make (Int64.of_int cfg.seed) in
  let rngs = Array.init cfg.connections (fun _ -> Prng.split base_rng) in
  let mean_ia_ns = 1e9 *. float_of_int cfg.connections /. cfg.rate_per_s in
  let actor w () =
    let rng = rngs.(w) in
    let tl = tallies.(w) in
    let recs = recorders.(w) in
    let conn = ref None in
    let since_churn = ref 0 in
    let disconnect () =
      (match !conn with Some c -> Client.close c | None -> ());
      conn := None
    in
    (* Bounded reconnect: backoff between attempts; gives up (and lets
       the per-request retry loop count the failure) after max_retries. *)
    let rec connect attempt =
      match !conn with
      | Some c -> Some c
      | None ->
        if attempt > cfg.max_retries then None
        else (
          match Client.connect sockaddr with
          | Ok c ->
            tl.t_reconnects <- tl.t_reconnects + 1;
            conn := Some c;
            Some c
          | Error _ ->
            if Atomic.get phase >= 2 then None
            else begin
              Thread.delay
                (float_of_int
                   (Client.backoff_ms ~rng ~attempt ~base_ms:cfg.backoff_base_ms
                      ~cap_ms:cfg.backoff_cap_ms)
                /. 1e3);
              connect (attempt + 1)
            end)
    in
    let start_ns = Clock.now_ns () in
    let next_arrival = ref start_ns in
    let exp_draw mean =
      let u = Prng.float rng 1.0 in
      -.mean *. log (1.0 -. u)
    in
    (* Mirrors Loadgen's draws, including the E27 diurnal/bursty
       shapes, so the service tier can be driven under the same
       arrival processes as the in-process grid. *)
    let interarrival () =
      match cfg.arrival with
      | Loadgen.Uniform_spaced -> Int64.of_float mean_ia_ns
      | Loadgen.Poisson -> Int64.of_float (exp_draw mean_ia_ns)
      | Loadgen.Diurnal ->
        let t_ns = Int64.to_float (Int64.sub !next_arrival start_ns) in
        let phase =
          2.0 *. Float.pi *. t_ns
          /. (float_of_int Loadgen.diurnal_period_ms *. 1e6)
        in
        let factor = 1.0 +. (Loadgen.diurnal_amplitude *. sin phase) in
        Int64.of_float (exp_draw (mean_ia_ns /. Float.max 0.05 factor))
      | Loadgen.Bursty ->
        let scale =
          if Prng.float rng 1.0 < Loadgen.burst_gap_p then
            Loadgen.burst_gap_scale
          else Loadgen.burst_dense_scale
        in
        Int64.of_float (exp_draw (mean_ia_ns *. scale))
    in
    let rec wait_until ns =
      let now = Clock.now_ns () in
      if Int64.compare now ns >= 0 || Atomic.get phase >= 2 then ()
      else begin
        if Int64.compare (Int64.sub ns now) 2_000_000L > 0 then
          Thread.delay 0.001
        else Thread.yield ();
        wait_until ns
      end
    in
    let n = ref 0 in
    (* One request to its terminal outcome: retry Overloaded (honouring
       the server's hint) and connection failures under capped jittered
       backoff; Deadline_exceeded and Bad_request are terminal — the
       deadline was the client's own budget. *)
    let rec attempt_request req attempt =
      match connect 0 with
      | None -> Error `Closed
      | Some c -> (
        let r = Client.request c ~deadline_ns:cfg.deadline_ns req in
        match r with
        | Ok (Wire.Overloaded { retry_after_ms }) when attempt < cfg.max_retries
          ->
          tl.t_retries <- tl.t_retries + 1;
          let jitter =
            Client.backoff_ms ~rng ~attempt ~base_ms:cfg.backoff_base_ms
              ~cap_ms:cfg.backoff_cap_ms
          in
          Thread.delay (float_of_int (retry_after_ms + jitter) /. 1e3);
          if Atomic.get phase >= 2 then r else attempt_request req (attempt + 1)
        | Error (`Closed | `Fail _) when attempt < cfg.max_retries ->
          (* Reset / refused: reconnect after jittered backoff. *)
          disconnect ();
          tl.t_retries <- tl.t_retries + 1;
          Thread.delay
            (float_of_int
               (Client.backoff_ms ~rng ~attempt ~base_ms:cfg.backoff_base_ms
                  ~cap_ms:cfg.backoff_cap_ms)
            /. 1e3);
          if Atomic.get phase >= 2 then r else attempt_request req (attempt + 1)
        | Error `Timeout ->
          (* The stream may hold a late reply; resynchronize by
             reconnecting, but the request itself is terminal (its
             deadline has passed). *)
          disconnect ();
          r
        | _ -> r)
    in
    while Atomic.get phase < 2 do
      let s = !next_arrival in
      next_arrival := Int64.add s (interarrival ());
      wait_until s;
      if Atomic.get phase < 2 then begin
        incr n;
        let op = op_names.(!n mod nops) in
        let req = gen_request ~rng ~op_name:op ~pid:w ~n:!n in
        (if cfg.churn_every > 0 && !since_churn >= cfg.churn_every then begin
           disconnect ();
           since_churn := 0
         end);
        incr since_churn;
        let outcome = attempt_request req 0 in
        (match terminal outcome with
        | `Ok -> tl.t_ok <- tl.t_ok + 1
        | `Over -> tl.t_over <- tl.t_over + 1
        | `Dead -> tl.t_dead <- tl.t_dead + 1
        | `Conn -> tl.t_conn <- tl.t_conn + 1
        | `Bad -> tl.t_bad <- tl.t_bad + 1);
        let ph = Atomic.get phase in
        if ph <= 1 then begin
          let i = op_index op in
          match terminal outcome with
          | `Ok ->
            (* Coordinated-omission corrected: from intended arrival,
               including any retry/backoff delay. *)
            Recorder.record recs.(ph) ~op:i
              ~ns:(Int64.to_int (Int64.sub (Clock.now_ns ()) s))
          | _ -> Recorder.record_failure recs.(ph) ~op:i
        end
      end
    done;
    disconnect ();
    tl.t_done <- true
  in
  let threads =
    Array.to_list
      (Array.init cfg.connections (fun w -> Thread.create (actor w) ()))
  in
  if cfg.warmup_ms > 0 then Thread.delay (float_of_int cfg.warmup_ms /. 1e3);
  Atomic.set phase 1;
  let t0 = Clock.now_ns () in
  mark ~phase ~tallies;
  Atomic.set phase 2;
  let t1 = Clock.now_ns () in
  (* Join with a deadline: every actor is built to terminate (deadlines
     + socket timeouts + capped retries), so a straggler past the slack
     is precisely a hung connection — count it, do not wait forever. *)
  let join_slack_s =
    2.0 +. (Int64.to_float cfg.deadline_ns /. 1e9)
    +. (float_of_int (cfg.backoff_cap_ms * (cfg.max_retries + 1)) /. 1e3)
  in
  let join_deadline = Int64.add (Clock.now_ns ()) (Int64.of_float (join_slack_s *. 1e9)) in
  let rec settle () =
    if Array.for_all (fun tl -> tl.t_done) tallies then true
    else if Int64.compare (Clock.now_ns ()) join_deadline >= 0 then false
    else begin
      Thread.delay 0.01;
      settle ()
    end
  in
  let all_done = settle () in
  if all_done then List.iter Thread.join threads;
  let hung = Array.fold_left (fun a tl -> if tl.t_done then a else a + 1) 0 tallies in
  let merged =
    Recorder.merge (Array.to_list (Array.map (fun r -> r.(1)) recorders))
  in
  let summary = Summary.of_recorder ~elapsed_ns:(Int64.sub t1 t0) merged in
  let outcome =
    Array.fold_left
      (fun o tl ->
        { o with
          ok = o.ok + tl.t_ok;
          overloaded = o.overloaded + tl.t_over;
          deadline = o.deadline + tl.t_dead;
          conn_failed = o.conn_failed + tl.t_conn;
          bad = o.bad + tl.t_bad;
          retries = o.retries + tl.t_retries;
          reconnects = o.reconnects + tl.t_reconnects })
      { ok = 0; overloaded = 0; deadline = 0; conn_failed = 0; bad = 0;
        retries = 0; reconnects = 0; hung }
      tallies
  in
  let report =
    { Report.problem = problem_to_string cfg.problem ^ "-service";
      variant = "serve";
      mechanism = "bloom_serve";
      tier = "serve";
      workers = cfg.connections;
      backend = "thread";
      mode = "open";
      rate_per_s = Some cfg.rate_per_s;
      arrival = Some (Loadgen.arrival_name cfg.arrival);
      duration_ms = cfg.duration_ms;
      warmup_ms = cfg.warmup_ms;
      seed = cfg.seed;
      summary }
  in
  (report, outcome)

let run ~sockaddr cfg =
  run_with_mark ~sockaddr cfg ~mark:(fun ~phase:_ ~tallies:_ ->
      Thread.delay (float_of_int cfg.duration_ms /. 1e3))

(* -- the kill -9 drill --------------------------------------------- *)

type drill = {
  report : Report.t;
  outcome : outcome;
  ok_before_kill : int;
  ok_after_restart : int;
  drain_clean : bool;
}

let sum_ok tallies = Array.fold_left (fun a tl -> a + tl.t_ok) 0 tallies

let drill ~exe ~sock ?(server_args = []) ?kill_at_ms ?(restart_after_ms = 50)
    cfg =
  let kill_at_ms =
    match kill_at_ms with Some m -> m | None -> cfg.duration_ms / 3
  in
  let args = [ "serve"; "--unix"; sock ] @ server_args in
  let first = Proc.spawn ~exe ~args in
  if not (Proc.wait_for_socket sock) then begin
    Proc.kill9 first;
    ignore (Proc.wait first);
    Error (Printf.sprintf "server %s never opened %s" exe sock)
  end
  else begin
    let ok_before_kill = ref 0 in
    let ok_at_restart = ref 0 in
    let second = ref None in
    let drain_clean = ref false in
    let mark ~phase:_ ~tallies =
      (* Steady phase timeline: load → kill -9 → dead air → restart →
         recovery window. *)
      Thread.delay (float_of_int kill_at_ms /. 1e3);
      ok_before_kill := sum_ok tallies;
      Proc.kill9 first;
      ignore (Proc.wait first);
      Thread.delay (float_of_int restart_after_ms /. 1e3);
      let s = Proc.spawn ~exe ~args in
      second := Some s;
      ignore (Proc.wait_for_socket sock);
      ok_at_restart := sum_ok tallies;
      let remaining = cfg.duration_ms - kill_at_ms in
      Thread.delay (float_of_int (max 50 remaining) /. 1e3)
    in
    let report, outcome =
      run_with_mark ~sockaddr:(Unix.ADDR_UNIX sock) ~mark cfg
    in
    let ok_after_restart = outcome.ok - !ok_at_restart in
    (match !second with
    | Some s ->
      Proc.sigterm s;
      drain_clean := (match Proc.wait s with `Exited 0 -> true | _ -> false)
    | None -> ());
    Ok
      { report;
        outcome;
        ok_before_kill = !ok_before_kill;
        ok_after_restart;
        drain_clean = !drain_clean }
  end
