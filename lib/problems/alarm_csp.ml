(** Alarm clock in message-passing style: the clock server keeps the
    schedule; sleepers rendezvous on a reply channel that the server
    signals when their deadline passes. *)

open Sync_csp
open Sync_platform
open Sync_taxonomy

type sleeper = { deadline : int; reply : unit Csp.Channel.t }

type t = {
  net : Csp.network;
  set_ch : (int * unit Csp.Channel.t) Csp.Channel.t; (* n, reply *)
  tick_ch : unit Csp.Channel.t;
  now_ch : int Csp.Channel.t Csp.Channel.t;
  stop_ch : unit Csp.Channel.t;
  server : Process.t;
}

let mechanism = "csp"

let create () =
  let net = Csp.network () in
  let set_ch = Csp.Channel.create ~name:"alarm-set" net in
  let tick_ch = Csp.Channel.create ~name:"alarm-tick" net in
  let now_ch = Csp.Channel.create ~name:"alarm-now" net in
  let stop_ch = Csp.Channel.create ~name:"alarm-stop" net in
  let server =
    Process.spawn ~backend:`Thread (fun () ->
      (* A dead clock must not strand parked sleepers: poison on abort. *)
      try
        let sleepers =
          Heap.create ~cmp:(fun a b -> compare a.deadline b.deadline) ()
        in
        let now = ref 0 in
        let running = ref true in
        while !running do
          match
            Csp.select
              [ Csp.recv_case set_ch (fun r -> `Set r);
                Csp.recv_case tick_ch (fun () -> `Tick);
                Csp.recv_case now_ch (fun r -> `Now r);
                Csp.recv_case stop_ch (fun () -> `Stop) ]
          with
          | `Set (n, reply) ->
            let deadline = !now + n in
            if !now >= deadline then Csp.send reply ()
            else Heap.push sleepers { deadline; reply }
          | `Tick ->
            incr now;
            let rec wake_due () =
              match Heap.peek sleepers with
              | Some s when s.deadline <= !now ->
                ignore (Heap.pop sleepers);
                Csp.send s.reply ();
                wake_due ()
              | Some _ | None -> ()
            in
            wake_due ()
          | `Now reply -> Csp.send reply !now
          | `Stop -> running := false
        done
      with e ->
        Csp.poison net e;
        raise e)
  in
  { net; set_ch; tick_ch; now_ch; stop_ch; server }

let wakeme t ~pid n =
  ignore pid;
  let reply = Csp.Channel.create ~name:"alarm-reply" t.net in
  Csp.send t.set_ch (n, reply);
  Csp.recv reply

let tick t = Csp.send t.tick_ch ()

let now t =
  let reply = Csp.Channel.create ~name:"alarm-now-reply" t.net in
  Csp.send t.now_ch reply;
  Csp.recv reply

let stop t =
  Csp.send t.stop_ch ();
  Process.join t.server

let meta =
  Meta.make ~mechanism ~problem:"alarm-clock"
    ~fragments:
      [ ("alarm-deadline", [ "deadline heap"; "reply"; "rendezvous" ]);
        ("alarm-order", [ "heap"; "wake-due-on-tick" ]) ]
    ~info_access:
      [ (Info.Parameters, Meta.Direct); (Info.Local_state, Meta.Indirect) ]
    ~aux_state:[ "deadline heap"; "now counter" ]
    ~separation:Meta.Enforced ()
