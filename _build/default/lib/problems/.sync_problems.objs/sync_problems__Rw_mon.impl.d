lib/problems/rw_mon.ml: Info Meta Monitor Protected Rw_intf Sync_monitor Sync_taxonomy
