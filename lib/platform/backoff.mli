(** Exponential backoff for contended retry loops — re-export of
    {!Sync_prims.Backoff}, which owns the implementation (the prims
    library sits below the platform so the E25 class-restricted locks
    can share it).

    Spin-vs-yield is decided per backoff at {!create} time by re-probing
    [Domain.recommended_domain_count] (not once at module load), so
    loops started after a test pins domains behave sanely; [?multicore]
    overrides the probe. *)

type t = Sync_prims.Backoff.t

val create : ?multicore:bool -> ?min_wait:int -> ?max_wait:int -> unit -> t
(** See {!Sync_prims.Backoff.create}. *)

val multicore : t -> bool
(** The spin-vs-yield decision this backoff was created with. *)

val once : t -> unit
(** Spin (or yield, once saturated or single-core) and escalate. *)

val reset : t -> unit
(** Return the backoff to its initial state. *)
