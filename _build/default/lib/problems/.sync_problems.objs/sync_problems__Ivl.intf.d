lib/problems/ivl.mli: Sync_platform
