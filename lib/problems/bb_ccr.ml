(** Bounded buffer with a conditional critical region: the two
    local-state constraints are literally the [when] guards — CCRs'
    strongest category — while the in-flight flags replicate the monitor
    solution's synchronization state by hand. *)

open Sync_taxonomy

type shared = {
  capacity : int;
  mutable items : int;
  mutable putting : bool;
  mutable getting : bool;
}

type t = {
  v : shared Sync_ccr.Ccr.t;
  res_put : pid:int -> int -> unit;
  res_get : pid:int -> int;
}

let mechanism = "ccr"

let create ~capacity ~put ~get =
  { v =
      Sync_ccr.Ccr.create
        { capacity; items = 0; putting = false; getting = false };
    res_put = put; res_get = get }

(* Abort safety: the in-flight flag is set in one region and cleared in
   another, so a body exception between them must clear the flag itself
   (in a region, waking waiters) — without counting the item transfer that
   never happened. *)

let put t ~pid value =
  Sync_ccr.Ccr.region t.v
    ~when_:(fun s -> (not s.putting) && s.items < s.capacity)
    (fun s -> s.putting <- true);
  match t.res_put ~pid value with
  | () ->
    Sync_ccr.Ccr.region t.v (fun s ->
        s.putting <- false;
        s.items <- s.items + 1)
  | exception e ->
    Sync_ccr.Ccr.region t.v (fun s -> s.putting <- false);
    raise e

let get t ~pid =
  Sync_ccr.Ccr.region t.v
    ~when_:(fun s -> (not s.getting) && s.items > 0)
    (fun s -> s.getting <- true);
  match t.res_get ~pid with
  | value ->
    Sync_ccr.Ccr.region t.v (fun s ->
        s.items <- s.items - 1;
        s.getting <- false);
    value
  | exception e ->
    Sync_ccr.Ccr.region t.v (fun s -> s.getting <- false);
    raise e

let stop _ = ()

let meta =
  Meta.make ~mechanism ~problem:"bounded-buffer"
    ~fragments:
      [ ("bb-no-overfill", [ "when"; "items<capacity" ]);
        ("bb-no-underflow", [ "when"; "items>0" ]);
        ("bb-access-exclusion", [ "when"; "not putting"; "not getting" ]) ]
    ~info_access:
      [ (Info.Local_state, Meta.Direct); (Info.Sync_state, Meta.Indirect) ]
    ~aux_state:[ "items count"; "putting/getting in-flight flags" ]
    ~separation:Meta.Separated ()
