(** Disk-head scheduling with bare semaphores: everything the monitor got
    from priority condition queues must be rebuilt by hand — explicit
    pending heaps, a private semaphore per waiting request, and a
    hand-rolled dispatch at release. The bulk of this module {e is} the
    paper's point about parameter information and low-level mechanisms. *)

open Sync_platform
open Sync_taxonomy

module Sem = Semaphore.Counting

type direction = Up | Down

type waiting = { dest : int; gate : Sem.t }

type t = {
  e : Sem.t; (* protects all scheduler state *)
  upq : waiting Heap.t;   (* ascending dest *)
  downq : waiting Heap.t; (* descending dest *)
  mutable headpos : int;
  mutable direction : direction;
  mutable busy : bool;
  res_access : pid:int -> int -> unit;
}

let mechanism = "semaphore"

let create ~tracks ~access =
  ignore tracks;
  { e = Sem.create 1;
    upq = Heap.create ~cmp:(fun a b -> compare a.dest b.dest) ();
    downq = Heap.create ~cmp:(fun a b -> compare b.dest a.dest) ();
    headpos = 0; direction = Up; busy = false; res_access = access }

let request t dest =
  Sem.p t.e;
  if not t.busy then begin
    t.busy <- true;
    t.headpos <- dest;
    Sem.v t.e
  end
  else begin
    let w = { dest; gate = Sem.create 0 } in
    if t.headpos < dest || (t.headpos = dest && t.direction = Up) then
      Heap.push t.upq w
    else Heap.push t.downq w;
    Sem.v t.e;
    Sem.p w.gate (* headpos/direction updated by the releaser *)
  end

let release t =
  Sem.p t.e;
  let next =
    match t.direction with
    | Up -> (
      match Heap.pop t.upq with
      | Some w -> Some w
      | None ->
        t.direction <- Down;
        Heap.pop t.downq)
    | Down -> (
      match Heap.pop t.downq with
      | Some w -> Some w
      | None ->
        t.direction <- Up;
        Heap.pop t.upq)
  in
  (match next with
  | Some w ->
    t.headpos <- w.dest;
    Sem.v w.gate
  | None -> t.busy <- false);
  Sem.v t.e

let access t ~pid track =
  request t track;
  Fun.protect
    ~finally:(fun () -> release t)
    (fun () -> t.res_access ~pid track)

let stop _ = ()

let meta =
  Meta.make ~mechanism ~problem:"disk-scheduler"
    ~fragments:
      [ ("disk-exclusion", [ "busy"; "flag"; "private"; "gate"; "P(gate)" ]);
        ("disk-scan-order",
         [ "upq"; "downq"; "heaps"; "dispatch-at-release"; "headpos";
           "direction" ]) ]
    ~info_access:
      [ (Info.Parameters, Meta.Indirect); (Info.Sync_state, Meta.Indirect) ]
    ~aux_state:
      [ "pending-request heaps ordered by track";
        "private semaphore per waiting request"; "headpos"; "direction";
        "busy flag" ]
    ~separation:Meta.Separated ()
