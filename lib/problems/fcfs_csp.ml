(** FCFS in message-passing style: a channel {e is} a FIFO request queue,
    so the server grants by receiving — arrival order falls out of the
    communication primitive. *)

open Sync_csp
open Sync_taxonomy

type t = {
  net : Csp.network;
  req : (int * unit Csp.Channel.t) Csp.Channel.t;
  stop_ch : unit Csp.Channel.t;
  server : Sync_platform.Process.t;
}

let mechanism = "csp"

let create ~use =
  let net = Csp.network () in
  let req = Csp.Channel.create ~name:"fcfs-req" net in
  let stop_ch = Csp.Channel.create ~name:"fcfs-stop" net in
  let server =
    Sync_platform.Process.spawn ~backend:`Thread (fun () ->
      (* A dead server must not strand parked clients: poison on abort. *)
      try
        let running = ref true in
        while !running do
          match
            Csp.select
              [ Csp.recv_case req (fun r -> `Req r);
                Csp.recv_case stop_ch (fun () -> `Stop) ]
          with
          | `Req (pid, done_ch) ->
            use ~pid;
            Csp.send done_ch ()
          | `Stop -> running := false
        done
      with e ->
        Csp.poison net e;
        raise e)
  in
  { net; req; stop_ch; server }

(* Request send injectable; the done leg is masked — once the request
   rendezvous commits the server performs the use and parks on [done_ch],
   so the client must collect it (cf. bb_csp). *)
let use t ~pid =
  let done_ch = Csp.Channel.create ~name:"fcfs-done" t.net in
  Csp.send t.req (pid, done_ch);
  Sync_platform.Fault.mask (fun () -> Csp.recv done_ch)

let stop t =
  Csp.send t.stop_ch ();
  Sync_platform.Process.join t.server

let meta =
  Meta.make ~mechanism ~problem:"fcfs"
    ~fragments:
      [ ("fcfs-exclusion", [ "sequential"; "server"; "process" ]);
        ("fcfs-order", [ "channel"; "FIFO" ]) ]
    ~info_access:
      [ (Info.Sync_state, Meta.Direct); (Info.Request_time, Meta.Direct) ]
    ~separation:Meta.Enforced ()
