(* Moved to [Sync_prims.Backoff] (the prims library sits below the
   platform so class-restricted locks can use it); re-exported here so
   platform code and external users keep their spelling. *)
include Sync_prims.Backoff
