(** The one-slot buffer problem (history information), after
    Campbell-Habermann [7].

    A single cell: [put] and [get] must strictly alternate, beginning with
    [put]. The enabling condition for each operation is {e whether the
    other operation has occurred} — history information. Path expressions
    express it directly ([path put ; get end]); state-based mechanisms
    must encode the history in a flag, illustrating the paper's remark
    that history and local state are often interchangeable. *)

open Sync_taxonomy

let spec =
  Spec.make ~name:"one-slot-buffer"
    ~description:"a single cell whose put and get strictly alternate"
    ~ops:[ "put"; "get" ]
    ~constraints:
      [ Constr.make ~id:"slot-alternation" ~cls:Constr.Exclusion
          ~info:[ Info.History ]
          ~description:
            "if the last completed operation was put then exclude put; if \
             it was get (or none) then exclude get";
        Constr.make ~id:"slot-access-exclusion" ~cls:Constr.Exclusion
          ~info:[ Info.Sync_state ]
          ~description:"if an operation is in progress then exclude all" ]

module type S = sig
  type t

  val mechanism : string

  val create : put:(pid:int -> int -> unit) -> get:(pid:int -> int) -> t

  val put : t -> pid:int -> int -> unit

  val get : t -> pid:int -> int

  val stop : t -> unit

  val meta : Meta.t
end
