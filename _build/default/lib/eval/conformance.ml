open Sync_taxonomy

type outcome =
  | Conformant
  | Nonconformant of string
  | Expected_anomaly of string
  | Unexpected_pass

type result = { entry : Registry.entry; outcome : outcome }

let run entries =
  List.map
    (fun (entry : Registry.entry) ->
      let outcome =
        match (entry.verify (), entry.expect_conformant) with
        | Ok (), true -> Conformant
        | Error msg, false -> Expected_anomaly msg
        | Error msg, true -> Nonconformant msg
        | Ok (), false -> Unexpected_pass
        | exception e -> Nonconformant ("exception: " ^ Printexc.to_string e)
      in
      { entry; outcome })
    entries

let regressions results =
  List.filter
    (fun r ->
      match r.outcome with
      | Nonconformant _ | Unexpected_pass -> true
      | Conformant | Expected_anomaly _ -> false)
    results

let pp ppf results =
  List.iter
    (fun r ->
      let id = Meta.id r.entry.Registry.meta in
      match r.outcome with
      | Conformant -> Format.fprintf ppf "%-50s pass@." id
      | Expected_anomaly msg ->
        Format.fprintf ppf "%-50s expected-anomaly (%s)@." id msg
      | Nonconformant msg -> Format.fprintf ppf "%-50s FAIL (%s)@." id msg
      | Unexpected_pass ->
        Format.fprintf ppf "%-50s UNEXPECTED-PASS (anomaly not reproduced)@."
          id)
    results
