(** One-slot buffer with a path expression: [path put ; get end].

    The showcase example of the mechanism: the entire synchronization
    scheme — alternation, exclusion, and the initial state — is the
    declaration itself. No auxiliary state, no procedures. This is the
    paper's canonical case of {e direct} history-information support. *)

open Sync_taxonomy

type t = {
  sys : Sync_pathexpr.Pathexpr.t;
  res_put : pid:int -> int -> unit;
  res_get : pid:int -> int;
}

let mechanism = "pathexpr"

let create ~put ~get =
  { sys = Sync_pathexpr.Pathexpr.of_string "path put ; get end";
    res_put = put; res_get = get }

let put t ~pid v =
  Sync_pathexpr.Pathexpr.run t.sys "put" (fun () -> t.res_put ~pid v)

let get t ~pid =
  Sync_pathexpr.Pathexpr.run t.sys "get" (fun () -> t.res_get ~pid)

let stop _ = ()

let meta =
  Meta.make ~mechanism ~problem:"one-slot-buffer"
    ~fragments:
      [ ("slot-alternation", [ "path"; "put;get"; "end" ]);
        ("slot-access-exclusion", [ "path"; "put;get"; "end" ]) ]
    ~info_access:
      [ (Info.History, Meta.Direct);
        (* The paper: paths' automatic mutual exclusion expresses exclusion
           constraints "although not of directly accessing synchronization
           state information". *)
        (Info.Sync_state, Meta.Indirect) ]
    ~separation:Meta.Enforced ()
