(** Exponential backoff for contended retry loops.

    A [Backoff.t] tracks how long the current thread has been spinning on a
    contended location. Each call to {!once} spins for a bounded, randomized
    number of iterations and doubles the bound, yielding to the scheduler
    once the bound saturates. This is the standard contention-management
    substrate used by the spin-based primitives in this library. *)

type t

val create : ?min_wait:int -> ?max_wait:int -> unit -> t
(** [create ()] returns a fresh backoff in its initial (shortest) state.
    [min_wait] and [max_wait] bound the spin count; both must be positive
    powers of two with [min_wait <= max_wait].
    @raise Invalid_argument otherwise. *)

val once : t -> unit
(** Spin (or yield, once saturated) and escalate the backoff. *)

val reset : t -> unit
(** Return the backoff to its initial state (call after a successful
    acquisition). *)
