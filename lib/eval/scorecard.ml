open Sync_metrics

type t = {
  matrix : Expressiveness.t;
  discrepancies : (string * Sync_taxonomy.Info.kind * string) list;
  pairings : Independence.pairing list;
  reuse : (string * float) list;
  modularity : Modularity.row list;
  conformance : Conformance.result list;
  robustness : Robustness.row list;
  perf : Perf.row list;
  observability : Observability.row list;
  service : Service_axis.row list;
  hierarchy : Hierarchy_axis.row list;
  scaling : Scaling_axis.t;
  adaptive : Adaptive_axis.t;
}

let build ?(run_conformance = true) ?(run_robustness = false)
    ?(run_perf = false) ?(run_observability = false) ?(run_service = false)
    ?(run_hierarchy = false) ?(run_scaling = false) ?(run_adaptive = false) () =
  let entries = Registry.all in
  let matrix = Expressiveness.matrix entries in
  let pairings = Independence.analyze entries in
  { matrix;
    discrepancies = Expressiveness.agrees_with_paper matrix;
    pairings;
    reuse = Independence.shared_constraint_reuse pairings;
    modularity = Modularity.analyze entries;
    conformance = (if run_conformance then Conformance.run entries else []);
    robustness = (if run_robustness then Robustness.run () else []);
    perf =
      (if run_perf then
         match Perf.measure () with
         | Ok rows -> rows
         | Error msg -> failwith ("perf axis: " ^ msg)
       else []);
    observability = (if run_observability then Observability.run () else []);
    service = (if run_service then Service_axis.run () else []);
    hierarchy =
      (if run_hierarchy then
         Hierarchy_axis.(run (default_spec ()))
       else []);
    scaling =
      (if run_scaling then Scaling_axis.(run (default_spec ()))
       else Scaling_axis.empty);
    adaptive =
      (if run_adaptive then Adaptive_axis.(run (default_spec ()))
       else Adaptive_axis.empty) }

let pp ppf t =
  Format.fprintf ppf "== E3: expressive power (mechanism x information) ==@.";
  Expressiveness.pp ppf t.matrix;
  (match t.discrepancies with
  | [] ->
    Format.fprintf ppf
      "matrix agrees with the paper's Section-5 conclusions@."
  | ds ->
    List.iter
      (fun (mech, kind, why) ->
        Format.fprintf ppf "DISCREPANCY %s/%s: %s@." mech
          (Sync_taxonomy.Info.to_string kind)
          why)
      ds);
  Format.fprintf ppf "@.== E4: constraint independence ==@.";
  Independence.pp_summary ppf t.reuse;
  Format.fprintf ppf "@.== E5: modularity ==@.";
  Modularity.pp ppf t.modularity;
  if t.conformance <> [] then begin
    Format.fprintf ppf "@.== E6: conformance (all solutions, all checks) ==@.";
    Conformance.pp ppf t.conformance;
    (match Conformance.regressions t.conformance with
    | [] -> Format.fprintf ppf "no regressions@."
    | rs -> Format.fprintf ppf "%d REGRESSION(S)@." (List.length rs))
  end;
  if t.robustness <> [] then begin
    Format.fprintf ppf "@.== E19: robustness (faults, cancellation, timeouts) ==@.";
    Robustness.pp ppf t.robustness;
    if Robustness.all_recovered t.robustness then
      Format.fprintf ppf "all runs recovered@."
    else Format.fprintf ppf "ROBUSTNESS FAILURE(S)@."
  end;
  if t.perf <> [] then begin
    Format.fprintf ppf
      "@.== E20: performance (closed-loop throughput + tail latency) ==@.";
    Perf.pp ppf t.perf
  end;
  if t.observability <> [] then begin
    Format.fprintf ppf
      "@.== E21: observability (traced contention, wake accounting) ==@.";
    Observability.pp ppf t.observability;
    if Observability.all_ok t.observability then
      Format.fprintf ppf "every mechanism produced a complete trace@."
    else Format.fprintf ppf "OBSERVABILITY FAILURE(S)@."
  end;
  if t.service <> [] then begin
    Format.fprintf ppf
      "@.== E24: service tier (deadlines, chaos, crash recovery) ==@.";
    Service_axis.pp ppf t.service;
    if Service_axis.all_ok t.service then
      Format.fprintf ppf "every scenario recovered with zero hung connections@."
    else Format.fprintf ppf "SERVICE FAILURE(S)@."
  end;
  if t.hierarchy <> [] then begin
    Format.fprintf ppf
      "@.== E25: primitive hierarchy (restricted atomic classes) ==@.";
    Hierarchy_axis.pp ppf t.hierarchy;
    if Hierarchy_axis.all_ok t.hierarchy then
      Format.fprintf ppf
        "every supported cell ran clean; unsupported cells are typed@."
    else Format.fprintf ppf "HIERARCHY FAILURE(S)@."
  end;
  if not (Scaling_axis.is_empty t.scaling) then begin
    Format.fprintf ppf
      "@.== E23: scalable-lock tier (queue locks, epoch readers) ==@.";
    Scaling_axis.pp ppf t.scaling;
    if Scaling_axis.all_ok t.scaling then
      Format.fprintf ppf
        "every measured cell ran clean; absent pairs are typed@."
    else Format.fprintf ppf "SCALING FAILURE(S)@."
  end;
  if not (Adaptive_axis.is_empty t.adaptive) then begin
    Format.fprintf ppf
      "@.== E27: self-tuning tier (adaptive vs static, live retiering) ==@.";
    Adaptive_axis.pp ppf t.adaptive;
    if Adaptive_axis.all_ok t.adaptive then
      Format.fprintf ppf "every measured cell ran clean@."
    else Format.fprintf ppf "ADAPTIVE FAILURE(S)@."
  end

let to_string t = Format.asprintf "%a" pp t

(* -- machine-readable view ---------------------------------------- *)

let matrix_json m =
  Emit.List
    (List.map
       (fun (mechanism, cells) ->
         Emit.Obj
           [ ("mechanism", Emit.Str mechanism);
             ("cells",
              Emit.List
                (List.map
                   (fun (kind, cell) ->
                     Emit.Obj
                       [ ("information",
                          Emit.Str (Sync_taxonomy.Info.to_string kind));
                         ("level",
                          match cell.Expressiveness.level with
                          | None -> Emit.Null
                          | Some s ->
                            Emit.Str (Sync_taxonomy.Meta.support_to_string s));
                         ("evidence",
                          Emit.List
                            (List.map
                               (fun id -> Emit.Str id)
                               cell.Expressiveness.evidence)) ])
                   cells)) ])
       m)

let conformance_json results =
  Emit.List
    (List.map
       (fun (r : Conformance.result) ->
         let outcome, detail =
           match r.Conformance.outcome with
           | Conformance.Conformant -> ("conformant", Emit.Null)
           | Conformance.Nonconformant m -> ("nonconformant", Emit.Str m)
           | Conformance.Expected_anomaly m -> ("expected-anomaly", Emit.Str m)
           | Conformance.Unexpected_pass -> ("unexpected-pass", Emit.Null)
         in
         Emit.Obj
           [ ("solution",
              Emit.Str (Sync_taxonomy.Meta.id r.Conformance.entry.Registry.meta));
             ("outcome", Emit.Str outcome);
             ("detail", detail) ])
       results)

let to_json t =
  Emit.Obj
    [ ("expressiveness", matrix_json t.matrix);
      ("discrepancies",
       Emit.List
         (List.map
            (fun (mech, kind, why) ->
              Emit.Obj
                [ ("mechanism", Emit.Str mech);
                  ("information", Emit.Str (Sync_taxonomy.Info.to_string kind));
                  ("detail", Emit.Str why) ])
            t.discrepancies));
      ("independence",
       Emit.Obj
         [ ("pairings",
            Emit.List
              (List.map
                 (fun (p : Independence.pairing) ->
                   Emit.Obj
                     [ ("mechanism", Emit.Str p.Independence.mechanism);
                       ("problem", Emit.Str p.Independence.problem);
                       ("variant_a", Emit.Str p.Independence.variant_a);
                       ("variant_b", Emit.Str p.Independence.variant_b);
                       ("constraint", Emit.Str p.Independence.constraint_id);
                       ("similarity", Emit.Float p.Independence.similarity) ])
                 t.pairings));
           ("shared_constraint_reuse",
            Emit.Obj
              (List.map (fun (m, r) -> (m, Emit.Float r)) t.reuse)) ]);
      ("modularity",
       Emit.List
         (List.map
            (fun (r : Modularity.row) ->
              Emit.Obj
                [ ("mechanism", Emit.Str r.Modularity.mechanism);
                  ("enforced", Emit.Int r.Modularity.enforced);
                  ("separated", Emit.Int r.Modularity.separated);
                  ("blended", Emit.Int r.Modularity.blended);
                  ("sync_procedures", Emit.Int r.Modularity.sync_procedures);
                  ("aux_state_items", Emit.Int r.Modularity.aux_state_items);
                  ("score", Emit.Float r.Modularity.score) ])
            t.modularity));
      ("conformance", conformance_json t.conformance);
      ("robustness",
       Emit.List
         (List.map
            (fun (r : Robustness.row) ->
              Emit.Obj
                [ ("mechanism", Emit.Str r.Robustness.mechanism);
                  ("problem", Emit.Str r.Robustness.problem);
                  ("scenario", Emit.Str r.Robustness.scenario);
                  ("policy", Emit.Str r.Robustness.policy);
                  ("runs", Emit.Int r.Robustness.runs);
                  ("recovered", Emit.Int r.Robustness.recovered);
                  ("detail", Emit.Str r.Robustness.detail) ])
            t.robustness));
      ("performance", Perf.to_json t.perf);
      ("observability", Observability.to_json t.observability);
      ("service", Service_axis.to_json t.service);
      ("hierarchy",
       Emit.List (List.map Hierarchy_axis.row_to_json t.hierarchy));
      ("scaling", Scaling_axis.rows_to_json t.scaling);
      ("adaptive", Adaptive_axis.rows_to_json t.adaptive) ]
