type t = {
  multicore : bool;
  min_wait : int;
  max_wait : int;
  mutable wait : int;
  mutable seed : int;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

(* Spin-vs-yield is decided per backoff, at creation: tests that pin the
   process to one core (or scenarios that spawn more threads than
   cores) get a yield-first backoff without a process-wide mode flip,
   and the answer tracks [Domain.recommended_domain_count] at the time
   the contended loop starts rather than at module initialization. *)
let create ?multicore ?(min_wait = 16) ?(max_wait = 4096) () =
  if not (is_pow2 min_wait) then
    invalid_arg
      (Printf.sprintf "Backoff.create: min_wait %d not a positive power of two"
         min_wait);
  if not (is_pow2 max_wait) then
    invalid_arg
      (Printf.sprintf "Backoff.create: max_wait %d not a positive power of two"
         max_wait);
  if min_wait > max_wait then
    invalid_arg
      (Printf.sprintf "Backoff.create: min_wait %d exceeds max_wait %d"
         min_wait max_wait);
  let multicore =
    match multicore with
    | Some b -> b
    | None -> Domain.recommended_domain_count () > 1
  in
  { multicore; min_wait; max_wait; wait = min_wait; seed = 0x9e3779b9 }

let multicore t = t.multicore

(* xorshift step; cheap per-thread pseudo-randomization so that threads
   backing off together do not re-collide in lockstep. *)
let next_seed s =
  let s = s lxor (s lsl 13) in
  let s = s lxor (s lsr 7) in
  s lxor (s lsl 17)

(* On a single-core machine spinning can never help: the thread we are
   waiting on cannot run until we give up the core. Skip straight to
   yielding there; the exponential spin phase only pays off when the
   peer is live on another core. *)
let once t =
  if not t.multicore then Thread.yield ()
  else begin
    let spins = t.min_wait + (t.seed land (t.wait - 1)) in
    t.seed <- next_seed t.seed;
    if t.wait >= t.max_wait then Thread.yield ()
    else begin
      for _ = 1 to spins do
        Domain.cpu_relax ()
      done;
      t.wait <- t.wait * 2
    end
  end

let reset t = t.wait <- t.min_wait
