(** Bounded buffer in message-passing style: a buffer server process owns
    the resource outright and communicates by rendezvous. Guarded
    selection expresses the two local-state constraints directly as case
    guards; access exclusion is structural (the server is sequential),
    which is the message-passing answer to synchronization-state
    information. *)

open Sync_csp
open Sync_taxonomy

type t = {
  net : Csp.network;
  put_ch : (int * int) Csp.Channel.t; (* pid, value *)
  get_ch : (int * int Csp.Channel.t) Csp.Channel.t; (* pid, reply *)
  stop_ch : unit Csp.Channel.t;
  server : Sync_platform.Process.t;
}

let mechanism = "csp"

let create ~capacity ~put ~get =
  let net = Csp.network () in
  let put_ch = Csp.Channel.create ~name:"bb-put" net in
  let get_ch = Csp.Channel.create ~name:"bb-get" net in
  let stop_ch = Csp.Channel.create ~name:"bb-stop" net in
  let server =
    Sync_platform.Process.spawn ~backend:`Thread (fun () ->
      (* The server owns the rendezvous: if it dies (e.g. a fault injected
         in a resource body), poison the network so parked clients fail
         instead of blocking forever. *)
      try
        let items = ref 0 in
        let running = ref true in
        while !running do
          let event =
            Csp.select
              [ Csp.guard (!items < capacity)
                  (Csp.recv_case put_ch (fun r -> `Put r));
                Csp.guard (!items > 0)
                  (Csp.recv_case get_ch (fun r -> `Get r));
                Csp.recv_case stop_ch (fun () -> `Stop) ]
          in
          match event with
          | `Put (pid, v) ->
            put ~pid v;
            incr items
          | `Get (pid, reply) ->
            let v = get ~pid in
            decr items;
            Csp.send reply v
          | `Stop -> running := false
        done
      with e ->
        Csp.poison net e;
        raise e)
  in
  { net; put_ch; get_ch; stop_ch; server }

let put t ~pid v = Csp.send t.put_ch (pid, v)

(* The request send is injectable (an abort there means the server never
   saw the request — nothing happened). The reply leg is masked: once the
   request rendezvous has committed, the server has already popped the
   item and parked on [reply]; abandoning it would strand the sequential
   server forever and lose the value. *)
let get t ~pid =
  let reply = Csp.Channel.create ~name:"bb-reply" t.net in
  Csp.send t.get_ch (pid, reply);
  Sync_platform.Fault.mask (fun () -> Csp.recv reply)

let stop t =
  Csp.send t.stop_ch ();
  Sync_platform.Process.join t.server

let meta =
  Meta.make ~mechanism ~problem:"bounded-buffer"
    ~fragments:
      [ ("bb-no-overfill", [ "guard"; "items<capacity"; "recv(put)" ]);
        ("bb-no-underflow", [ "guard"; "items>0"; "recv(get)" ]);
        ("bb-access-exclusion", [ "sequential"; "server"; "process" ]) ]
    ~info_access:
      [ (Info.Local_state, Meta.Direct); (Info.Sync_state, Meta.Direct) ]
    ~aux_state:[ "items count mirrors buffer occupancy" ]
    ~separation:Meta.Enforced ()
