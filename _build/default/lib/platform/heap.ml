(* Entries carry a monotonically increasing sequence number so that equal
   keys are ordered FIFO. *)
type 'a entry = { value : 'a; seq : int }

type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create ?(capacity = 16) ~cmp () =
  ignore capacity;
  { cmp; data = [||]; size = 0; next_seq = 0 }

let length t = t.size

let is_empty t = t.size = 0

let entry_cmp t a b =
  let c = t.cmp a.value b.value in
  if c <> 0 then c else compare a.seq b.seq

let grow t e =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let data = Array.make ncap e in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_cmp t t.data.(i) t.data.(parent) < 0 then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && entry_cmp t t.data.(l) t.data.(!smallest) < 0 then
    smallest := l;
  if r < t.size && entry_cmp t t.data.(r) t.data.(!smallest) < 0 then
    smallest := r;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t value =
  let e = { value; seq = t.next_seq } in
  t.next_seq <- t.next_seq + 1;
  grow t e;
  t.data.(t.size) <- e;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t = if t.size = 0 then None else Some t.data.(0).value

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    t.data.(0) <- t.data.(t.size);
    if t.size > 0 then sift_down t 0;
    Some top.value
  end

let pop_exn t =
  match pop t with
  | Some v -> v
  | None -> invalid_arg "Heap.pop_exn: empty"

let clear t =
  t.size <- 0;
  t.data <- [||]

let to_list t =
  let copy = { t with data = Array.sub t.data 0 t.size } in
  let rec drain acc =
    match pop copy with
    | None -> List.rev acc
    | Some v -> drain (v :: acc)
  in
  drain []
