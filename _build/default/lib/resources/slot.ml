type t = {
  work : int;
  busy : bool Atomic.t;
  mutable full : bool;
  mutable value : int;
}

let create ?(work = 50) () =
  { work; busy = Atomic.make false; full = false; value = 0 }

let fail what = raise (Busywork.Ill_synchronized ("slot: " ^ what))

let enter t = if not (Atomic.compare_and_set t.busy false true) then
    fail "concurrent operations"

let put t v =
  enter t;
  if t.full then begin
    Atomic.set t.busy false;
    fail "put into a full slot"
  end;
  Busywork.spin t.work;
  t.value <- v;
  t.full <- true;
  Atomic.set t.busy false

let get t =
  enter t;
  if not t.full then begin
    Atomic.set t.busy false;
    fail "get from an empty slot"
  end;
  Busywork.spin t.work;
  let v = t.value in
  t.full <- false;
  Atomic.set t.busy false;
  v

let is_full t = t.full
