(** Readers-writers in message-passing style: a scheduler process grants
    access; clients perform the (possibly concurrent) reads themselves and
    send completion notices.

    - {!Readers_prio}: separate request channels per type; the read case
      is enabled whenever no writer holds the resource, so waiting writers
      never block arriving readers.
    - {!Fcfs}: one request channel. The server commits to the {e head}
      request and drains only completion channels until that request is
      admissible — a message-passing two-stage queue, structurally the
      same trick as the monitor's (paper §5.2). *)

open Sync_csp
open Sync_taxonomy

type ('a, 'b) chans = {
  net : Csp.network;
  read_req : (int * unit Csp.Channel.t) Csp.Channel.t;
  write_req : (int * unit Csp.Channel.t) Csp.Channel.t;
  read_done : unit Csp.Channel.t;
  write_done : unit Csp.Channel.t;
  stop_ch : unit Csp.Channel.t;
  server : Sync_platform.Process.t;
  res_read : 'a;
  res_write : 'b;
}

type rw = (pid:int -> int, pid:int -> unit) chans

let make_chans ~read ~write ~server_body =
  let net = Csp.network () in
  let read_req = Csp.Channel.create ~name:"read-req" net in
  let write_req = Csp.Channel.create ~name:"write-req" net in
  let read_done = Csp.Channel.create ~name:"read-done" net in
  let write_done = Csp.Channel.create ~name:"write-done" net in
  let stop_ch = Csp.Channel.create ~name:"stop" net in
  let server =
    Sync_platform.Process.spawn ~backend:`Thread (fun () ->
        (* A dead scheduler must not strand parked clients: poison on
           abort. *)
        try server_body ~read_req ~write_req ~read_done ~write_done ~stop_ch
        with e ->
          Csp.poison net e;
          raise e)
  in
  { net; read_req; write_req; read_done; write_done; stop_ch; server;
    res_read = read; res_write = write }

(* The request send is injectable (abort = the scheduler never saw us).
   Everything after the request rendezvous commits is masked: the grant
   leg (the scheduler has already counted us and parked on [grant]) and
   the completion notice, which must reach the scheduler even when the
   resource body aborts — otherwise its occupancy counts never drain. *)
let client_read (t : rw) ~pid =
  let grant = Csp.Channel.create ~name:"grant" t.net in
  Csp.send t.read_req (pid, grant);
  Sync_platform.Fault.mask (fun () -> Csp.recv grant);
  let finish () =
    Sync_platform.Fault.mask (fun () -> Csp.send t.read_done ())
  in
  match t.res_read ~pid with
  | v ->
    finish ();
    v
  | exception e ->
    finish ();
    raise e

let client_write (t : rw) ~pid =
  let grant = Csp.Channel.create ~name:"grant" t.net in
  Csp.send t.write_req (pid, grant);
  Sync_platform.Fault.mask (fun () -> Csp.recv grant);
  let finish () =
    Sync_platform.Fault.mask (fun () -> Csp.send t.write_done ())
  in
  match t.res_write ~pid with
  | () -> finish ()
  | exception e ->
    finish ();
    raise e

let shutdown (t : rw) =
  Csp.send t.stop_ch ();
  Sync_platform.Process.join t.server

module Readers_prio = struct
  type t = rw

  let mechanism = "csp"

  let policy = Rw_intf.Readers_priority

  let create ~read ~write =
    make_chans ~read ~write
      ~server_body:(fun ~read_req ~write_req ~read_done ~write_done ~stop_ch ->
        let readers = ref 0 in
        let writing = ref false in
        let running = ref true in
        while !running || !readers > 0 || !writing do
          let event =
            Csp.select
              [ (* Textual order implements the priority: an arriving or
                   waiting reader beats a waiting writer whenever both are
                   enabled. *)
                Csp.guard (not !writing)
                  (Csp.recv_case read_req (fun r -> `Read r));
                Csp.recv_case read_done (fun () -> `Read_done);
                Csp.recv_case write_done (fun () -> `Write_done);
                Csp.guard
                  ((not !writing) && !readers = 0)
                  (Csp.recv_case write_req (fun r -> `Write r));
                Csp.guard !running (Csp.recv_case stop_ch (fun () -> `Stop)) ]
          in
          match event with
          | `Read (_pid, grant) ->
            incr readers;
            Csp.send grant ()
          | `Read_done -> decr readers
          | `Write (_pid, grant) ->
            writing := true;
            Csp.send grant ()
          | `Write_done -> writing := false
          | `Stop -> running := false
        done)

  let read = client_read

  let write = client_write

  let stop = shutdown

  let meta =
    Meta.make ~mechanism ~problem:"readers-writers"
      ~variant:(Rw_intf.policy_to_string policy)
      ~fragments:
        [ ("rw-exclusion",
           [ "guard not writing"; "guard not writing && readers=0";
             "readers count"; "writing flag" ]);
          ("rw-priority", [ "case"; "order"; "read_req before write_req" ]) ]
      ~info_access:
        [ (Info.Request_type, Meta.Direct); (Info.Sync_state, Meta.Indirect) ]
      ~aux_state:[ "readers count"; "writing flag" ]
      ~separation:Meta.Enforced ()
end

module Fcfs = struct
  (* FCFS needs one totally ordered arrival stream, so both request types
     share a single channel (the channel's FIFO sender queue is stage 1).
     The server commits to the head request and drains only completion
     channels until it is admissible (stage 2), so later arrivals cannot
     overtake — a message-passing two-stage queue (paper §5.2). *)
  type req = { kind : [ `R | `W ]; grant : unit Csp.Channel.t }

  type t = {
    net : Csp.network;
    req_ch : req Csp.Channel.t;
    read_done : unit Csp.Channel.t;
    write_done : unit Csp.Channel.t;
    stop_ch : unit Csp.Channel.t;
    server : Sync_platform.Process.t;
    res_read : pid:int -> int;
    res_write : pid:int -> unit;
  }

  let mechanism = "csp"

  let policy = Rw_intf.Fcfs

  let create ~read ~write =
    let net = Csp.network () in
    let req_ch = Csp.Channel.create ~name:"rw-req" net in
    let read_done = Csp.Channel.create ~name:"read-done" net in
    let write_done = Csp.Channel.create ~name:"write-done" net in
    let stop_ch = Csp.Channel.create ~name:"stop" net in
    let server =
      Sync_platform.Process.spawn ~backend:`Thread (fun () ->
        try
          let readers = ref 0 in
          let writing = ref false in
          let running = ref true in
          let drain_once () =
            match
              Csp.select
                [ Csp.recv_case read_done (fun () -> `Read_done);
                  Csp.recv_case write_done (fun () -> `Write_done) ]
            with
            | `Read_done -> decr readers
            | `Write_done -> writing := false
          in
          while !running || !readers > 0 || !writing do
            let event =
              Csp.select
                [ Csp.recv_case read_done (fun () -> `Read_done);
                  Csp.recv_case write_done (fun () -> `Write_done);
                  Csp.recv_case req_ch (fun r -> `Req r);
                  Csp.guard !running (Csp.recv_case stop_ch (fun () -> `Stop))
                ]
            in
            match event with
            | `Read_done -> decr readers
            | `Write_done -> writing := false
            | `Stop -> running := false
            | `Req { kind = `R; grant } ->
              while !writing do
                drain_once ()
              done;
              incr readers;
              Csp.send grant ()
            | `Req { kind = `W; grant } ->
              while !writing || !readers > 0 do
                drain_once ()
              done;
              writing := true;
              Csp.send grant ()
          done
        with e ->
          Csp.poison net e;
          raise e)
    in
    { net; req_ch; read_done; write_done; stop_ch; server; res_read = read;
      res_write = write }

  let read t ~pid =
    let grant = Csp.Channel.create ~name:"grant" t.net in
    Csp.send t.req_ch { kind = `R; grant };
    Csp.recv grant;
    let v = t.res_read ~pid in
    Csp.send t.read_done ();
    v

  let write t ~pid =
    let grant = Csp.Channel.create ~name:"grant" t.net in
    Csp.send t.req_ch { kind = `W; grant };
    Csp.recv grant;
    t.res_write ~pid;
    Csp.send t.write_done ()

  let stop t =
    Csp.send t.stop_ch ();
    Sync_platform.Process.join t.server

  let meta =
    Meta.make ~mechanism ~problem:"readers-writers"
      ~variant:(Rw_intf.policy_to_string policy)
      ~fragments:
        [ ("rw-exclusion",
           [ "guard not writing"; "guard not writing && readers=0";
             "readers count"; "writing flag" ]);
          ("rw-priority",
           [ "hold"; "head"; "request"; "drain"; "completions"; "two-stage" ])
        ]
      ~info_access:
        [ (Info.Request_type, Meta.Direct); (Info.Sync_state, Meta.Indirect);
          (Info.Request_time, Meta.Direct) ]
      ~aux_state:[ "readers count"; "writing flag" ]
      ~separation:Meta.Enforced ()
end
