lib/problems/rw_ccr.ml: Info Meta Rw_intf Sync_ccr Sync_taxonomy
