open Sync_serializer

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let check_strings = Alcotest.(check (list string))

(* ------------------------------------------------------------------ *)
(* Possession is exclusive                                             *)

let test_possession_exclusive () =
  let s = Serializer.create () in
  let g = Testutil.Gauge.create () in
  let worker () =
    for _ = 1 to 200 do
      Serializer.with_serializer s (fun () ->
          Testutil.Gauge.enter g;
          Thread.yield ();
          Testutil.Gauge.leave g)
    done
  in
  Testutil.run_all (List.init 4 (fun _ -> worker));
  check_int "one inside" 1 (Testutil.Gauge.max g)

let test_exception_releases () =
  let s = Serializer.create () in
  (try Serializer.with_serializer s (fun () -> failwith "boom")
   with Failure _ -> ());
  Serializer.with_serializer s (fun () -> ())

(* ------------------------------------------------------------------ *)
(* Automatic signalling: guards re-evaluated at release points          *)

let test_enqueue_wakes_on_guard () =
  let s = Serializer.create () in
  let q = Serializer.Queue.create ~name:"waiters" s in
  let flag = ref false in
  let resumed = Atomic.make false in
  let waiter =
    Testutil.spawn (fun () ->
        Serializer.with_serializer s (fun () ->
            Serializer.enqueue q ~until:(fun () -> !flag);
            Atomic.set resumed true))
  in
  Testutil.eventually "parked" (fun () -> Serializer.Queue.length q = 1);
  (* Entering and leaving without touching the flag must not wake it. *)
  Serializer.with_serializer s (fun () -> ());
  Testutil.never "woke without guard" (fun () -> Atomic.get resumed);
  Serializer.with_serializer s (fun () -> flag := true);
  Sync_platform.Process.join waiter;
  check_bool "resumed" true (Atomic.get resumed);
  check_int "queue drained" 0 (Serializer.Queue.length q)

(* A resumed process may assume its guard holds (possession transferred
   atomically at the release point). *)
let test_guard_holds_on_resume () =
  let s = Serializer.create () in
  let q = Serializer.Queue.create s in
  let tokens = ref 0 in
  let violations = Atomic.make 0 in
  let consumer () =
    Serializer.with_serializer s (fun () ->
        Serializer.enqueue q ~until:(fun () -> !tokens > 0);
        if !tokens <= 0 then ignore (Atomic.fetch_and_add violations 1)
        else decr tokens)
  in
  let ts = List.init 5 (fun _ -> Testutil.spawn consumer) in
  Testutil.eventually "all parked" (fun () -> Serializer.Queue.length q = 5);
  for _ = 1 to 5 do
    Serializer.with_serializer s (fun () -> incr tokens)
  done;
  List.iter Sync_platform.Process.join ts;
  check_int "no violations" 0 (Atomic.get violations);
  check_int "tokens consumed" 0 !tokens

(* Only the queue head is eligible: a ready process behind a blocked head
   must not overtake it. *)
let test_fifo_head_blocks_queue () =
  let s = Serializer.create () in
  let q = Serializer.Queue.create s in
  let head_may_go = ref false in
  let j = Testutil.Journal.create () in
  let head =
    Testutil.spawn (fun () ->
        Serializer.with_serializer s (fun () ->
            Serializer.enqueue q ~until:(fun () -> !head_may_go);
            Testutil.Journal.add j "head"))
  in
  Testutil.eventually "head parked" (fun () -> Serializer.Queue.length q = 1);
  let second =
    Testutil.spawn (fun () ->
        Serializer.with_serializer s (fun () ->
            Serializer.enqueue q ~until:(fun () -> true);
            Testutil.Journal.add j "second"))
  in
  Testutil.eventually "second parked behind head" (fun () ->
      Serializer.Queue.length q = 2);
  (* Trigger re-evaluation: second's guard is true but it is not the head. *)
  Serializer.with_serializer s (fun () -> ());
  Testutil.never "second overtook head" (fun () ->
      Testutil.Journal.entries j <> []);
  Serializer.with_serializer s (fun () -> head_may_go := true);
  Sync_platform.Process.join head;
  Sync_platform.Process.join second;
  check_strings "fifo order" [ "head"; "second" ] (Testutil.Journal.entries j)

let test_rank_orders_queue () =
  let s = Serializer.create () in
  let q = Serializer.Queue.create s in
  let j = Testutil.Journal.create () in
  let waiter rank =
    let t =
      Testutil.spawn (fun () ->
          Serializer.with_serializer s (fun () ->
              Serializer.enqueue ~rank q ~until:(fun () -> true);
              Testutil.Journal.add j (string_of_int rank)))
    in
    t
  in
  (* Park all three while the serializer is held, so they are ordered by
     rank when the holder releases. *)
  let gate = ref false in
  let holder =
    Testutil.spawn (fun () ->
        Serializer.with_serializer s (fun () ->
            Serializer.enqueue q ~until:(fun () -> !gate)))
  in
  Testutil.eventually "holder parked" (fun () ->
      Serializer.Queue.length q = 1);
  let t1 = waiter 30 in
  Testutil.eventually "parked" (fun () -> Serializer.Queue.length q = 2);
  let t2 = waiter 10 in
  Testutil.eventually "parked" (fun () -> Serializer.Queue.length q = 3);
  let t3 = waiter 20 in
  Testutil.eventually "parked" (fun () -> Serializer.Queue.length q = 4);
  Serializer.with_serializer s (fun () -> gate := true);
  List.iter Sync_platform.Process.join [ holder; t1; t2; t3 ];
  (* rank 0 (the holder's wait) resumes first but logs nothing. *)
  check_strings "rank order" [ "10"; "20"; "30" ] (Testutil.Journal.entries j)

(* ------------------------------------------------------------------ *)
(* Crowds                                                              *)

let test_crowd_allows_concurrency () =
  let s = Serializer.create () in
  let crowd = Serializer.Crowd.create ~name:"readers" s in
  let g = Testutil.Gauge.create () in
  let b = Sync_platform.Latch.Barrier.create 3 in
  let reader () =
    Serializer.with_serializer s (fun () ->
        Serializer.join_crowd crowd ~body:(fun () ->
            Testutil.Gauge.enter g;
            (* Hold everyone in the crowd simultaneously. *)
            Sync_platform.Latch.Barrier.await b;
            Testutil.Gauge.leave g))
  in
  Testutil.run_all (List.init 3 (fun _ -> reader));
  check_int "three in crowd at once" 3 (Testutil.Gauge.max g);
  check_int "crowd empty after" 0 (Serializer.Crowd.count crowd)

let test_crowd_guard_excludes () =
  let s = Serializer.create () in
  let readers = Serializer.Crowd.create ~name:"readers" s in
  let q = Serializer.Queue.create s in
  let in_crowd = Atomic.make false in
  let release_reader = Sync_platform.Latch.create 1 in
  let reader =
    Testutil.spawn (fun () ->
        Serializer.with_serializer s (fun () ->
            Serializer.join_crowd readers ~body:(fun () ->
                Atomic.set in_crowd true;
                Sync_platform.Latch.wait release_reader)))
  in
  Testutil.eventually "reader in crowd" (fun () -> Atomic.get in_crowd);
  let writer_done = Atomic.make false in
  let writer =
    Testutil.spawn (fun () ->
        Serializer.with_serializer s (fun () ->
            Serializer.enqueue q ~until:(fun () ->
                Serializer.Crowd.is_empty readers);
            Atomic.set writer_done true))
  in
  Testutil.never "writer entered while crowd occupied" (fun () ->
      Atomic.get writer_done);
  Sync_platform.Latch.arrive release_reader;
  Sync_platform.Process.join reader;
  Sync_platform.Process.join writer;
  check_bool "writer eventually ran" true (Atomic.get writer_done)

let test_join_crowd_exception_leaves () =
  let s = Serializer.create () in
  let crowd = Serializer.Crowd.create s in
  (try
     Serializer.with_serializer s (fun () ->
         Serializer.join_crowd crowd ~body:(fun () -> failwith "body"))
   with Failure _ -> ());
  check_int "crowd left" 0 (Serializer.Crowd.count crowd);
  Serializer.with_serializer s (fun () -> ())

let () =
  Alcotest.run "serializer"
    [ ( "possession",
        [ Alcotest.test_case "exclusive" `Quick test_possession_exclusive;
          Alcotest.test_case "exception releases" `Quick
            test_exception_releases ] );
      ( "queues",
        [ Alcotest.test_case "guard wakes" `Quick test_enqueue_wakes_on_guard;
          Alcotest.test_case "guard holds on resume" `Quick
            test_guard_holds_on_resume;
          Alcotest.test_case "head blocks queue" `Quick
            test_fifo_head_blocks_queue;
          Alcotest.test_case "rank orders queue" `Quick test_rank_orders_queue
        ] );
      ( "crowds",
        [ Alcotest.test_case "allows concurrency" `Quick
            test_crowd_allows_concurrency;
          Alcotest.test_case "guard excludes" `Quick test_crowd_guard_excludes;
          Alcotest.test_case "exception leaves crowd" `Quick
            test_join_crowd_exception_leaves ] ) ]
