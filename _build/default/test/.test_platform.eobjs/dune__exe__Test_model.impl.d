test/test_model.ml: Alcotest Explore List Mon Printf Scenarios Sem String Sync_model Sysstate
