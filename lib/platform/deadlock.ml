(* All state lives behind one raw stdlib mutex. The instrumented facades
   (Mutex, Semaphore, Waitq, Detrt) call in from their own critical
   sections, so nothing here may ever block on a platform primitive. *)

type rid = int

type key = Task of int | Thr of int

let guard = Stdlib.Mutex.create ()

let on = Atomic.make false

let next_rid = ref 0

let rnames : (rid, string) Hashtbl.t = Hashtbl.create 64

(* process -> the one resource it waits for *)
let waits : (key, rid) Hashtbl.t = Hashtbl.create 64

(* resource -> current holders *)
let holders : (rid, key list) Hashtbl.t = Hashtbl.create 64

let pnames : (key, string) Hashtbl.t = Hashtbl.create 64

let task_provider : (unit -> (int * string) option) ref = ref (fun () -> None)

let set_task_provider f = task_provider := f

let self_key () =
  match !task_provider () with
  | Some (tid, name) ->
    let k = Task tid in
    Hashtbl.replace pnames k name;
    k
  | None -> Thr (Thread.id (Thread.self ()))

let key_name k =
  match Hashtbl.find_opt pnames k with
  | Some n -> n
  | None ->
    (match k with
    | Task tid -> Printf.sprintf "task#%d" tid
    | Thr tid -> Printf.sprintf "thread#%d" tid)

let rname r =
  match Hashtbl.find_opt rnames r with
  | Some n -> n
  | None -> Printf.sprintf "resource#%d" r

let locked f =
  Stdlib.Mutex.lock guard;
  Fun.protect ~finally:(fun () -> Stdlib.Mutex.unlock guard) f

let register ?(kind = "resource") ?name () =
  locked (fun () ->
      let r = !next_rid in
      incr next_rid;
      let n =
        match name with Some n -> n | None -> Printf.sprintf "%s#%d" kind r
      in
      Hashtbl.replace rnames r n;
      r)

let enabled () = Atomic.get on

let clear_edges () =
  Hashtbl.reset waits;
  Hashtbl.reset holders;
  Hashtbl.reset pnames

let reset () = locked clear_edges

let enable () =
  locked clear_edges;
  Atomic.set on true

let disable () =
  Atomic.set on false;
  locked clear_edges

let name_self n =
  if enabled () then
    locked (fun () -> Hashtbl.replace pnames (self_key ()) n)

let blocked r =
  if enabled () then
    locked (fun () -> Hashtbl.replace waits (self_key ()) r)

let unblocked () =
  if enabled () then locked (fun () -> Hashtbl.remove waits (self_key ()))

let acquired r =
  if enabled () then
    locked (fun () ->
        let k = self_key () in
        Hashtbl.remove waits k;
        let hs = Option.value (Hashtbl.find_opt holders r) ~default:[] in
        if not (List.mem k hs) then Hashtbl.replace holders r (k :: hs))

let released r =
  if enabled () then
    locked (fun () ->
        let k = self_key () in
        let hs = Option.value (Hashtbl.find_opt holders r) ~default:[] in
        Hashtbl.replace holders r (List.filter (fun k' -> k' <> k) hs))

type cycle = { procs : string list; resources : string list }

exception Found of (key * rid) list

(* DFS over processes: p's successors are the holders of the resource p
   waits for. A back-edge to a node on the current path is a circular
   wait; the path slice from that node is the cycle. *)
let find_cycle () =
  if not (enabled ()) then None
  else
    locked (fun () ->
        let visited = Hashtbl.create 16 in
        let rec dfs path p =
          match Hashtbl.find_opt waits p with
          | None -> ()
          | Some r ->
            if List.exists (fun (p', _) -> p' = p) path then
              raise
                (Found
                   (* slice of [path] (newest first) back to [p]'s own
                      entry, re-reversed into cycle order *)
                   (let rec take = function
                      | [] -> []
                      | ((p', _) as e) :: rest ->
                        if p' = p then [ e ] else e :: take rest
                    in
                    List.rev (take path)))
            else if not (Hashtbl.mem visited p) then begin
              Hashtbl.replace visited p ();
              List.iter
                (fun h -> dfs ((p, r) :: path) h)
                (Option.value (Hashtbl.find_opt holders r) ~default:[])
            end
        in
        match Hashtbl.iter (fun p _ -> dfs [] p) waits with
        | () -> None
        | exception Found cyc ->
          Some
            { procs = List.map (fun (p, _) -> key_name p) cyc;
              resources = List.map (fun (_, r) -> rname r) cyc })

let cycle_to_string c =
  match c.procs with
  | [] -> "<empty cycle>"
  | first :: _ ->
    String.concat " -> "
      (List.concat (List.map2 (fun p r -> [ p; r ]) c.procs c.resources)
      @ [ first ])

let watch ?(period_s = 0.25) ~on_cycle () =
  let stop = Atomic.make false in
  let seen = Hashtbl.create 4 in
  let t =
    Thread.create
      (fun () ->
        while not (Atomic.get stop) do
          (match find_cycle () with
          | Some c ->
            let s = cycle_to_string c in
            if not (Hashtbl.mem seen s) then begin
              Hashtbl.replace seen s ();
              on_cycle c
            end
          | None -> ());
          Thread.delay period_s
        done)
      ()
  in
  fun () ->
    Atomic.set stop true;
    Thread.join t
