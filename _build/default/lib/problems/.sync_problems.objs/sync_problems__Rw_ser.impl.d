lib/problems/rw_ser.ml: Info Meta Rw_intf Serializer Sync_serializer Sync_taxonomy
